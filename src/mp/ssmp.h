// libssmp: message passing over cache coherence (Section 4.1).
//
// Each (sender, receiver) pair owns a one-directional, cache-line-sized
// buffer containing a flag byte and the payload, so a message transmission is
// a single cache-line transfer: the sender writes the payload and sets the
// flag (invalidating the receiver's copy); the receiver's next poll pulls the
// line — "a one-way message costs roughly twice the latency of transferring a
// cache line" (Section 6.2) emerges from the protocol, it is not hard-coded.
//
// On the Tilera the same interface maps to the iMesh hardware message
// passing, as in the paper (footnote 4).
#ifndef SRC_MP_SSMP_H_
#define SRC_MP_SSMP_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "src/core/mem_sim.h"
#include "src/util/cacheline.h"
#include "src/util/check.h"

namespace ssync {

// A fixed-size message: four 64-bit words (op, key, value, token).
struct MpMessage {
  static constexpr int kWords = 4;
  std::uint64_t w[kWords] = {0, 0, 0, 0};
};

namespace internal {
// Hardware-MP hook: only the simulated backend on a platform with hardware
// message passing (Tilera) provides a real implementation.
template <typename Mem>
struct MpHardware {
  static bool Available() { return false; }
  static void Send(int /*to_cpu*/, const MpMessage&) { SSYNC_CHECK(false); }
  static bool TryRecv(int /*from_cpu*/, MpMessage*) { return false; }
};
}  // namespace internal

// Msg must expose `static constexpr int kWords` and a `std::uint64_t
// w[kWords]` payload. The default MpMessage fills exactly one cache line
// (flag + 4 words); wider message types round the channel buffer up to a
// whole number of lines, modeling a multi-line transfer per message. The
// hardware (iMesh) backend only supports the canonical MpMessage.
template <typename Mem, typename Msg = MpMessage>
class SsmpComm {
 public:
  // n participants with dense thread ids [0, n). use_hw selects the hardware
  // backend where available (checked at send time).
  explicit SsmpComm(int n, bool use_hw = false)
      : n_(n),
        use_hw_(use_hw),
        buffers_(static_cast<std::size_t>(n) * n),
        tx_seq_(static_cast<std::size_t>(n) * n, 1),
        rx_seq_(static_cast<std::size_t>(n) * n, 1),
        scan_(static_cast<std::size_t>(n)) {}

  int participants() const { return n_; }
  bool use_hw() const { return use_hw_; }

  void Send(int to, const Msg& msg) {
    const int from = Mem::ThreadId();
    if (use_hw_) {
      HwSend(to, msg);
      return;
    }
    Buffer& b = buffer(from, to);
    while (b.flag.LoadPoll() != 0) {
      Mem::Pause(16);  // receiver has not consumed the previous message
    }
    // Payload and flag live on one line; the store-buffer retires the
    // payload bytes and the flag back-to-back, so the whole message costs a
    // single cache-line transfer (Section 4.1) — charged at the flag store.
    std::memcpy(b.payload, msg.w, sizeof(msg.w));
    Mem::FullFence();
    b.flag.Store(1);
  }

  // Non-blocking Send: false when the receiver has not yet consumed the
  // previous message on this channel. Lets an event-loop caller (the MP
  // execution engine) queue outbound work host-side instead of stalling.
  bool TrySend(int to, const Msg& msg) {
    const int from = Mem::ThreadId();
    if (use_hw_) {
      HwSend(to, msg);  // hardware queues internally
      return true;
    }
    Buffer& b = buffer(from, to);
    if (b.flag.LoadPoll() != 0) {
      return false;
    }
    std::memcpy(b.payload, msg.w, sizeof(msg.w));
    Mem::FullFence();
    b.flag.Store(1);
    return true;
  }

  bool TryRecv(int from, Msg* msg) {
    if (use_hw_) {
      return HwTryRecv(from, msg);
    }
    const int to = Mem::ThreadId();
    Buffer& b = buffer(from, to);
    // Ownership-maintaining poll (Section 5.3): the buffer stays Modified at
    // the receiver, so the sender's store is a directed single-owner
    // invalidation — no broadcast on the Opteron's incomplete directory —
    // and the flag-clear below is a local store.
    if (b.flag.LoadPollRfo() != 1) {
      return false;
    }
    Mem::ReadData(b.payload, sizeof(msg->w));
    std::memcpy(msg->w, b.payload, sizeof(msg->w));
    b.flag.Store(0);
    return true;
  }

  void Recv(int from, Msg* msg) {
    while (!TryRecv(from, msg)) {
      Mem::Pause(16);
    }
  }

  // --- Round-trip channel API ---
  //
  // For request-response protocols with a single outstanding message per
  // (sender, receiver) channel, the flag handshake above is overkill: the
  // sender KNOWS the buffer is free (the response to the previous request
  // was already consumed), and the receiver does not need to clear the flag
  // (the sender learns the request was consumed when the response arrives).
  // Instead of a 0/1 flag, the flag carries an alternating sequence parity
  // (1, 2, 1, ...) tracked privately by each side, so a message costs
  // exactly one line transfer to write and one to read — the paper's
  // "one-way message costs roughly twice the latency of transferring a
  // cache line", and a round trip costs four transfers (Section 6.2). This
  // is the kind of protocol tailoring the paper applies in libssmp.

  void SendRt(int to, const Msg& msg) {
    const int from = Mem::ThreadId();
    if (use_hw_) {
      HwSend(to, msg);
      return;
    }
    Buffer& b = buffer(from, to);
    std::uint8_t& seq = tx_seq_[pair_index(from, to)];
    // One line, one transfer: see Send().
    std::memcpy(b.payload, msg.w, sizeof(msg.w));
    Mem::FullFence();
    b.flag.Store(seq);
    seq = OtherParity(seq);
  }

  bool TryRecvRt(int from, Msg* msg) {
    if (use_hw_) {
      return HwTryRecv(from, msg);
    }
    const int to = Mem::ThreadId();
    Buffer& b = buffer(from, to);
    std::uint8_t& seq = rx_seq_[pair_index(from, to)];
    if (b.flag.LoadPollRfo() != seq) {  // ownership-maintaining poll (§5.3)
      return false;
    }
    Mem::ReadData(b.payload, sizeof(msg->w));
    std::memcpy(msg->w, b.payload, sizeof(msg->w));
    seq = OtherParity(seq);
    return true;
  }

  void RecvRt(int from, Msg* msg) {
    while (!TryRecvRt(from, msg)) {
      Mem::Pause(16);
    }
  }

  // Prefetches the outgoing buffer to `to` for writing. A request-response
  // server calls this right after receiving a request, so the reply
  // buffer's ownership transfer overlaps with the service work and the
  // reply store hits a locally owned line — the paper's prefetchw
  // optimization applied to message passing (Sections 5.3 and 6.2).
  void PrefetchOutgoing(int to) {
    if (use_hw_) {
      return;
    }
    Buffer& b = buffer(Mem::ThreadId(), to);
    Mem::PrefetchwAsync(&b.flag);
  }

  // Test/diagnostic helper: the simulated line address of a channel buffer.
  LineAddr DebugLine(int from, int to) { return LineOf(&buffer(from, to)); }

  // Receives from any of [first_from, last_from]; returns the sender id.
  // Round-robin scan for fairness, resuming after the last served sender.
  // The rotation cursor is per RECEIVER (not shared across the comm): with a
  // single shared cursor, concurrent receivers race on it and one receiver's
  // progress can repeatedly reset another's scan position to just past its
  // own favorite sender, starving high-numbered peers.
  int RecvFromAny(Msg* msg, int first_from, int last_from) {
    for (;;) {
      const int from = TryRecvFromAny(msg, first_from, last_from);
      if (from >= 0) {
        return from;
      }
      Mem::Pause(8);
    }
  }

  // One fair scan over [first_from, last_from]; returns the sender id, or -1
  // when no channel had a message pending.
  int TryRecvFromAny(Msg* msg, int first_from, int last_from) {
    const int span = last_from - first_from + 1;
    int& cursor = scan_[static_cast<std::size_t>(Mem::ThreadId())].next;
    for (int i = 0; i < span; ++i) {
      const int from = first_from + (cursor + i) % span;
      if (TryRecv(from, msg)) {
        cursor = (cursor + i + 1) % span;
        return from;
      }
    }
    return -1;
  }

 private:
  struct alignas(kCacheLineSize) Buffer {
    typename Mem::template Atomic<std::uint8_t> flag{0};
    std::uint8_t payload[sizeof(std::uint64_t) * Msg::kWords] = {};
  };
  static_assert(sizeof(Buffer) % kCacheLineSize == 0);

  void HwSend(int to, const Msg& msg) {
    if constexpr (std::is_same_v<Msg, MpMessage>) {
      internal::MpHardware<Mem>::Send(to, msg);
    } else {
      SSYNC_CHECK(false);  // iMesh backend speaks MpMessage only
    }
  }

  bool HwTryRecv(int from, Msg* msg) {
    if constexpr (std::is_same_v<Msg, MpMessage>) {
      return internal::MpHardware<Mem>::TryRecv(from, msg);
    } else {
      SSYNC_CHECK(false);
      return false;
    }
  }

  Buffer& buffer(int from, int to) {
    SSYNC_DCHECK(from >= 0 && from < n_ && to >= 0 && to < n_);
    return buffers_[pair_index(from, to)];
  }

  std::size_t pair_index(int from, int to) const {
    return static_cast<std::size_t>(from) * n_ + to;
  }

  static std::uint8_t OtherParity(std::uint8_t seq) { return seq == 1 ? 2 : 1; }

  // Per-receiver RecvFromAny cursor, padded so two receivers' cursors never
  // share a line (they are host-side bookkeeping, not simulated state).
  struct alignas(kCacheLineSize) ScanState {
    int next = 0;
  };

  int n_;
  bool use_hw_;
  std::vector<Buffer> buffers_;
  // Private per-channel sequence parities for the round-trip API. Host-side
  // bookkeeping (each entry is touched by exactly one thread), like a real
  // implementation's per-connection state in thread-local storage.
  std::vector<std::uint8_t> tx_seq_;
  std::vector<std::uint8_t> rx_seq_;
  std::vector<ScanState> scan_;
};

namespace internal {
// Simulated-backend hardware MP: forwards to the Machine's iMesh queues,
// translating dense thread ids to tile/cpu ids.
template <>
struct MpHardware<SimMem> {
  static bool Available() {
    return g_sim_machine != nullptr && g_sim_machine->has_hw_mp();
  }
  static void Send(int to, const MpMessage& msg) {
    SSYNC_CHECK(Available());
    g_sim_machine->HwSend(g_thread_to_cpu[to], msg.w, sizeof(msg.w));
  }
  static bool TryRecv(int from, MpMessage* msg) {
    SSYNC_CHECK(Available());
    std::uint32_t len = 0;
    return g_sim_machine->HwTryRecv(g_thread_to_cpu[from], msg->w, &len);
  }
};
}  // namespace internal

}  // namespace ssync

#endif  // SRC_MP_SSMP_H_
