// Fixed-size bit set of sharers (cpus / cores / tiles), sized for the largest
// studied machine (80 cpus).
#ifndef SRC_CCSIM_SHARERS_H_
#define SRC_CCSIM_SHARERS_H_

#include <cstdint>

#include "src/util/check.h"

namespace ssync {

class SharerSet {
 public:
  static constexpr int kMaxSharers = 128;

  void Add(int i) {
    SSYNC_DCHECK(i >= 0 && i < kMaxSharers);
    w_[i >> 6] |= 1ULL << (i & 63);
  }

  void Remove(int i) {
    SSYNC_DCHECK(i >= 0 && i < kMaxSharers);
    w_[i >> 6] &= ~(1ULL << (i & 63));
  }

  bool Contains(int i) const { return (w_[i >> 6] >> (i & 63)) & 1; }

  void Clear() { w_[0] = w_[1] = 0; }

  bool Empty() const { return (w_[0] | w_[1]) == 0; }

  int Count() const {
    return __builtin_popcountll(w_[0]) + __builtin_popcountll(w_[1]);
  }

  // True if the set is empty or contains exactly {i}.
  bool NoneBut(int i) const {
    SharerSet copy = *this;
    copy.Remove(i);
    return copy.Empty();
  }

  template <typename Fn>
  void ForEach(Fn fn) const {
    for (int word = 0; word < 2; ++word) {
      std::uint64_t bits = w_[word];
      while (bits != 0) {
        const int bit = __builtin_ctzll(bits);
        fn(word * 64 + bit);
        bits &= bits - 1;
      }
    }
  }

 private:
  std::uint64_t w_[2] = {0, 0};
};

}  // namespace ssync

#endif  // SRC_CCSIM_SHARERS_H_
