// Machine: a simulated many-core with caches and a coherence protocol.
//
// The Machine is the meeting point of the substrate: it owns the cache
// hierarchy, the global per-line coherence state, and a protocol model chosen
// by the platform spec. The memory backends (src/core/mem_sim.h) call
// Access(); unit tests and ccbench drive the pure state machine directly via
// AccessAt() with an explicit clock.
//
// Concurrency model: coherence transactions mutate global state atomically at
// their issue time; their latency advances the issuing cpu's clock, and a
// per-line busy window serializes transactions that target the same line
// (which is what bounds the aggregate throughput of contended lines, Fig. 4).
#ifndef SRC_CCSIM_MACHINE_H_
#define SRC_CCSIM_MACHINE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ccsim/cache.h"
#include "src/ccsim/sharers.h"
#include "src/ccsim/types.h"
#include "src/platform/spec.h"

namespace ssync {

// Global truth about one cache line.
struct LineInfo {
  NodeId home = kNoNode;       // memory node / home slice (first touch)
  Cycles busy_until = 0;       // per-line transaction serialization
  CpuId owner = kNoCpu;        // private-cache owner (M/E/O), multi-socket
  LineState owner_state = LineState::kInvalid;
  SharerSet sharers;           // cpus (multi-socket), cores (Niagara), tiles (Tilera)
  CpuId last_writer = kNoCpu;  // Tilera: most recent writer
  NodeId forward = kNoNode;    // Xeon: socket whose LLC responds (MESIF F)
  bool written = false;        // Tilera: dirty-at-home since last probe
  bool was_shared = false;     // Opteron probe filter: sticky "maybe shared"
  bool in_memory_only = true;  // no cache holds the line anywhere
};

struct MachineStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t peer_transfers = 0;
  std::uint64_t mem_accesses = 0;
  std::uint64_t broadcasts = 0;     // Opteron incomplete-directory broadcasts
  std::uint64_t invalidations = 0;  // private copies killed
  std::uint64_t stall_cycles = 0;   // time lost to per-line serialization
  std::uint64_t port_stall_cycles = 0;  // time queued at coherence ports
  // Coherence state-transition counts (a line *entering* the state in some
  // private cache) — the per-protocol fingerprint trace_replay reports.
  std::uint64_t to_modified = 0;
  std::uint64_t to_exclusive = 0;
  std::uint64_t to_shared = 0;
  std::uint64_t to_owned = 0;  // MOESI only; always 0 under MESI

  bool operator==(const MachineStats& o) const {
    return accesses == o.accesses && l1_hits == o.l1_hits && l2_hits == o.l2_hits &&
           llc_hits == o.llc_hits && peer_transfers == o.peer_transfers &&
           mem_accesses == o.mem_accesses && broadcasts == o.broadcasts &&
           invalidations == o.invalidations && stall_cycles == o.stall_cycles &&
           port_stall_cycles == o.port_stall_cycles && to_modified == o.to_modified &&
           to_exclusive == o.to_exclusive && to_shared == o.to_shared &&
           to_owned == o.to_owned;
  }
  bool operator!=(const MachineStats& o) const { return !(*this == o); }
};

// State shared between the Machine facade and the protocol model.
struct MachineState {
  explicit MachineState(const PlatformSpec& s);

  PlatformSpec spec;
  std::vector<Cache> l1;   // per cpu (per core on Niagara)
  std::vector<Cache> l2;   // per cpu (Opteron/Xeon) or per home slice (Tilera)
  std::vector<Cache> llc;  // per socket (Xeon inclusive, Niagara single)
  std::unordered_map<LineAddr, LineInfo> lines;
  MachineStats stats;
  // Coherence-port queues: per socket/die on the multi-sockets, per home
  // tile on the Tilera. Empty when spec.port_service == 0.
  std::vector<Cycles> port_busy;

  LineInfo& Line(LineAddr line, CpuId first_toucher);
  Cache& L1Of(CpuId cpu) {
    return l1[spec.kind == PlatformKind::kNiagara ? spec.CoreOf(cpu) : cpu];
  }

  // Claims node's coherence port at `now` for spec.port_service cycles;
  // returns the queue delay the requester must absorb (zero when disabled
  // or uncontended — the service time itself is already part of the
  // calibrated Table-2 latencies).
  Cycles ClaimPort(int node, Cycles now);

  // A broadcast claims every port in parallel; the requester waits for the
  // slowest one (snoop responses must all arrive).
  Cycles ClaimAllPorts(Cycles now);

  // Serializes a transaction on the line: returns the stall (wait for the
  // previous transaction) and advances the busy window by the transaction's
  // occupancy, which depends on the operation class (see machine.cc).
  Cycles Claim(LineInfo& li, Cycles now, Cycles latency, AccessType type);
};

// Protocol strategy. One instance per Machine; implementations in
// model_multisocket.cc, model_niagara.cc, model_tilera.cc.
class CoherenceModel {
 public:
  explicit CoherenceModel(MachineState& st) : st_(st) {}
  virtual ~CoherenceModel() = default;

  virtual AccessResult AccessAt(CpuId cpu, LineAddr line, AccessType type, Cycles now) = 0;

  // prefetchw-style read-for-ownership hint (Section 5.3): the store path's
  // state transitions, a load's pipelining behavior.
  virtual AccessResult PrefetchwAt(CpuId cpu, LineAddr line, Cycles now) {
    return AccessAt(cpu, line, AccessType::kRfo, now);
  }

  // Drops the line from every cache (test/bench setup utility).
  virtual void FlushLine(LineAddr line) = 0;

  // Highest-privilege state of the line in the cpu's private hierarchy.
  virtual LineState PrivateState(CpuId cpu, LineAddr line) const = 0;

 protected:
  MachineState& st_;
};

// The default protocol: each platform's calibrated model, exactly as the
// paper measured it (MOESI on the Opteron, MESIF on the Xeon, etc.).
inline constexpr const char* kDefaultProtocolName = "paper";

class Machine {
 public:
  // `protocol` is a name from the ProtocolRegistry (src/ccsim/protocol.h);
  // the spec must be supported by that protocol (checked).
  explicit Machine(const PlatformSpec& spec,
                   const std::string& protocol = kDefaultProtocolName);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const PlatformSpec& spec() const { return st_.spec; }
  const std::string& protocol() const { return protocol_; }
  const MachineStats& stats() const { return st_.stats; }
  void ResetStats() { st_.stats = MachineStats{}; }

  // Clears state tied to a virtual-time domain (per-line busy windows,
  // in-flight hardware messages). Called by SimRuntime at the start of every
  // run: each Engine starts at time zero, so timing state from a previous
  // run must not leak in. Cache contents themselves survive (they are
  // physical state, as on a real machine).
  void ResetTimeDomain();

  // --- Fiber-context API (requires a running sim::Engine) ---
  AccessResult Access(LineAddr line, AccessType type);
  AccessResult Prefetchw(LineAddr line);
  void Fence();  // charges the platform's memory-barrier cost

  // Split access for value-carrying operations. AccessBegin() synchronizes
  // to virtual-time order and performs the coherence transaction; the
  // caller then reads/writes the host value AT THE SERIALIZATION POINT and
  // calls AccessFinish() to pay the latency (which may yield to other
  // fibers). Touching the value only after AccessFinish() would let a fiber
  // observe stores that serialize later in virtual time — breaking
  // linearizability of the simulated memory.
  AccessResult AccessBegin(LineAddr line, AccessType type);
  AccessResult PollBegin(LineAddr line, bool rfo);
  AccessResult PrefetchwBegin(LineAddr line);
  void AccessFinish(const AccessResult& r);

  // Polling load, for busy-wait and channel-scan loops. When the line is
  // already valid somewhere in the cpu's private hierarchy it costs only
  // the scan issue rate — the loads of a polling loop are independent and
  // pipeline in a real core, unlike the dependent-chain load-to-use
  // latencies of Table 3. A poll of an invalid line is a normal load.
  //
  // With `rfo` the poll maintains *ownership* of the line (prefetchw + load,
  // Section 5.3): a miss — or a mere Shared copy — fetches the line in
  // Modified state, so the eventual writer finds a single tracked owner and
  // the Opteron's incomplete directory can invalidate it with a directed
  // probe instead of a system-wide broadcast.
  AccessResult Poll(LineAddr line, bool rfo = false);

  // Non-blocking prefetch (plain load or read-for-ownership): the coherence
  // transaction is issued now — global line state changes and the line's
  // busy window is claimed as usual — but the issuing cpu pays only the
  // instruction-issue cost and continues; the transfer completes in the
  // background. One outstanding slot per cpu: a subsequent Access to the
  // same line first waits out the completion time, so software cannot
  // consume prefetched data earlier than the hardware would deliver it.
  // This is the memory-level parallelism behind the paper's prefetchw
  // optimization (Section 5.3) and its efficient message-passing servers
  // (Section 6.2).
  void PrefetchAsync(LineAddr line, bool for_write);

  // --- Pure state-machine API (tests, ccbench latency probes) ---
  AccessResult AccessAt(CpuId cpu, LineAddr line, AccessType type, Cycles now);
  AccessResult PrefetchwAt(CpuId cpu, LineAddr line, Cycles now);

  // --- Placement ---
  void SetHome(LineAddr line, NodeId node);

  // --- Introspection / test setup ---
  LineState PrivateState(CpuId cpu, LineAddr line) const;
  // As PrivateState, but considering only caches truly private to the cpu:
  // on the Tilera the home L2 slice is shared LLC (the protocol's ordering
  // point, reported dirty after a remote store) and is excluded here.
  // Invariant checks (single-writer/multi-reader) want this view.
  LineState StrictPrivateState(CpuId cpu, LineAddr line) const;
  LineState LlcState(int socket, LineAddr line) const;
  const LineInfo* FindLine(LineAddr line) const;
  void FlushLine(LineAddr line);
  // Demotes a line out of the L1 into the L2 (ccbench Table 3 setup).
  void DemoteToL2(CpuId cpu, LineAddr line);

  // --- Hardware message passing (Tilera iMesh) ---
  bool has_hw_mp() const { return st_.spec.has_hw_mp; }
  // Sender side: charges injection cost, delivers after the mesh latency.
  void HwSend(CpuId to, const void* data, std::uint32_t len);
  // Receiver side: polls the queue from `from`; returns false if no message
  // has arrived (by the receiver's clock). On success charges dequeue cost.
  bool HwTryRecv(CpuId from, void* data, std::uint32_t* len);

 private:
  struct MpMessage {
    Cycles ready;
    std::uint32_t len;
    std::array<std::uint8_t, 64> bytes;
  };

  struct PendingPrefetch {
    LineAddr line = 0;
    Cycles ready = 0;
    bool valid = false;
  };

  MachineState st_;
  std::string protocol_;
  std::unique_ptr<CoherenceModel> model_;
  std::vector<std::deque<MpMessage>> mp_;   // [to * num_cpus + from]
  std::vector<PendingPrefetch> prefetch_;   // one outstanding slot per cpu
};

}  // namespace ssync

#endif  // SRC_CCSIM_MACHINE_H_
