#include "src/ccsim/model_multisocket.h"

#include <algorithm>

#include "src/util/check.h"

namespace ssync {

// ---------------------------------------------------------------------------
// Private-cache plumbing
// ---------------------------------------------------------------------------

void MultiSocketModel::PromoteToL1(CpuId cpu, LineAddr line, LineState state) {
  st_.l2[cpu].Remove(line);
  InstallPrivate(cpu, line, state);
}

void MultiSocketModel::InstallPrivate(CpuId cpu, LineAddr line, LineState state) {
  const Cache::Victim v1 = st_.l1[cpu].Insert(line, state);
  if (v1.valid) {
    const Cache::Victim v2 = st_.l2[cpu].Insert(v1.line, v1.state);
    if (v2.valid) {
      HandleL2Victim(cpu, v2);
    }
  }
}

void MultiSocketModel::RemovePrivate(CpuId cpu, LineAddr line) {
  st_.l1[cpu].Remove(line);
  st_.l2[cpu].Remove(line);
}

void MultiSocketModel::HandleL2Victim(CpuId cpu, const Cache::Victim& victim) {
  const auto it = st_.lines.find(victim.line);
  SSYNC_DCHECK(it != st_.lines.end());
  LineInfo& li = it->second;
  if (inclusive()) {
    // Xeon: the LLC retains the line. Dirty victims write back into the LLC.
    if (victim.state == LineState::kModified) {
      st_.llc[st_.spec.SocketOf(cpu)].Insert(victim.line, LineState::kModified);
    }
  }
  if (li.owner == cpu) {
    li.owner = kNoCpu;
    li.owner_state = LineState::kInvalid;
    // Opteron: a dirty victim is written back to the home memory and the
    // probe-filter entry is dropped (non-inclusive LLC is modeled as the
    // directory only; see DESIGN.md).
  } else {
    li.sharers.Remove(cpu);
  }
  if (!inclusive() && li.owner == kNoCpu && li.sharers.Empty()) {
    li.in_memory_only = true;
  }
}

void MultiSocketModel::LlcInsert(int socket, LineAddr line, LineState state) {
  const Cache::Victim victim = st_.llc[socket].Insert(line, state);
  if (!victim.valid) {
    return;
  }
  // Inclusive LLC capacity eviction: back-invalidate the whole socket.
  const auto it = st_.lines.find(victim.line);
  SSYNC_DCHECK(it != st_.lines.end());
  LineInfo& li = it->second;
  const int cpu_lo = socket * st_.spec.cores_per_socket * st_.spec.cpus_per_core;
  const int cpu_hi = cpu_lo + st_.spec.cores_per_socket * st_.spec.cpus_per_core;
  for (CpuId cpu = cpu_lo; cpu < cpu_hi; ++cpu) {
    RemovePrivate(cpu, victim.line);
    li.sharers.Remove(cpu);
    if (li.owner == cpu) {
      li.owner = kNoCpu;
      li.owner_state = LineState::kInvalid;
    }
    ++st_.stats.invalidations;
  }
  bool any_llc = false;
  for (const Cache& c : st_.llc) {
    any_llc = any_llc || c.Contains(victim.line);
  }
  if (li.owner == kNoCpu && li.sharers.Empty() && !any_llc) {
    li.in_memory_only = true;
  }
}

bool MultiSocketModel::CopiesOutsideSocket(const LineInfo& li, LineAddr line,
                                           int socket) const {
  if (li.owner != kNoCpu && st_.spec.SocketOf(li.owner) != socket) {
    return true;
  }
  bool outside = false;
  li.sharers.ForEach([&](int cpu) {
    if (st_.spec.SocketOf(cpu) != socket) {
      outside = true;
    }
  });
  if (outside) {
    return true;
  }
  if (inclusive()) {
    for (int s = 0; s < st_.spec.num_sockets; ++s) {
      if (s != socket && st_.llc[s].Contains(line)) {
        return true;
      }
    }
  }
  return false;
}

Cycles MultiSocketModel::FarthestInvolvedLink(const LineInfo& li, LineAddr line,
                                              int socket) const {
  Cycles far = 0;
  auto consider = [&](int other_socket) {
    if (other_socket != socket) {
      far = std::max(far, st_.spec.LinkCost(socket, other_socket));
    }
  };
  if (li.owner != kNoCpu) {
    consider(st_.spec.SocketOf(li.owner));
  }
  li.sharers.ForEach([&](int cpu) { consider(st_.spec.SocketOf(cpu)); });
  if (inclusive()) {
    for (int s = 0; s < st_.spec.num_sockets; ++s) {
      if (st_.llc[s].Contains(line)) {
        consider(s);
      }
    }
  }
  return far;
}

// ---------------------------------------------------------------------------
// Access
// ---------------------------------------------------------------------------

AccessResult MultiSocketModel::AccessAt(CpuId cpu, LineAddr line, AccessType type,
                                        Cycles now) {
  ++st_.stats.accesses;
  LineInfo& li = st_.Line(line, cpu);
  const PlatformSpec& spec = st_.spec;
  Cache& l1 = st_.l1[cpu];
  Cache& l2 = st_.l2[cpu];

  if (type == AccessType::kLoad) {
    if (l1.Contains(line)) {
      l1.Touch(line);
      ++st_.stats.l1_hits;
      return {spec.l1_lat, 0, Source::kL1};
    }
    const LineState s2 = l2.GetState(line);
    if (s2 != LineState::kInvalid) {
      PromoteToL1(cpu, line, s2);
      ++st_.stats.l2_hits;
      return {spec.l2_lat, 0, Source::kL2};
    }
  } else {
    // Stores and atomics require M (or silently upgradable E).
    const LineState s1 = l1.GetState(line);
    if (s1 == LineState::kModified || s1 == LineState::kExclusive) {
      if (s1 == LineState::kExclusive) {
        l1.SetState(line, LineState::kModified);  // silent E->M upgrade
        li.owner_state = LineState::kModified;
        ++st_.stats.to_modified;
      }
      l1.Touch(line);
      ++st_.stats.l1_hits;
      return {IsAtomic(type) ? spec.atomic_local : spec.l1_lat, 0, Source::kL1};
    }
    const LineState s2 = l2.GetState(line);
    if (s2 == LineState::kModified || s2 == LineState::kExclusive) {
      PromoteToL1(cpu, line, LineState::kModified);
      li.owner_state = LineState::kModified;
      if (s2 == LineState::kExclusive) {
        ++st_.stats.to_modified;  // E->M upgrade during the L2 promotion
      }
      ++st_.stats.l2_hits;
      return {IsAtomic(type) ? spec.atomic_local : spec.l2_lat, 0, Source::kL2};
    }
  }

  AccessResult result = type == AccessType::kLoad ? LoadMiss(cpu, line, li, now)
                                                  : StoreMiss(cpu, line, li, type, now);
  // Port queueing delays the transaction's start; the line then serializes
  // behind any in-flight transaction on it.
  result.stall += st_.Claim(li, now + result.stall, result.latency, type);
  return result;
}

AccessResult MultiSocketModel::LoadMiss(CpuId cpu, LineAddr line, LineInfo& li,
                                        Cycles now) {
  const PlatformSpec& spec = st_.spec;
  const int socket = spec.SocketOf(cpu);
  Cycles lat = spec.dir_lookup;
  Cycles port = 0;
  Source src = Source::kMemLocal;

  if (li.owner != kNoCpu) {
    // Data lives in a peer's private cache (M, E, or O).
    const CpuId owner = li.owner;
    const int osock = spec.SocketOf(owner);
    const Cycles probe = li.owner_state == LineState::kModified ? spec.probe_modified
                         : li.owner_state == LineState::kExclusive
                             ? spec.probe_exclusive
                             : spec.probe_shared;  // kOwned
    if (moesi()) {
      // Opteron: the request travels requester -> home directory -> owner ->
      // requester; Table 2 is the best case where the home is local to one of
      // the two parties.
      const int home = li.home;
      lat += probe + spec.LinkCost(socket, home) + spec.LinkCost(home, osock) +
             spec.LinkCost(osock, socket);
      port = st_.ClaimPort(home, now);
      if (osock != home) {
        port = std::max(port, st_.ClaimPort(osock, now));
      }
    } else {
      // Xeon: in-socket via the inclusive LLC, off-socket via snoop broadcast
      // plus the remote socket's LLC lookup before the core probe.
      lat += probe + 2 * spec.LinkCost(socket, osock);
      if (osock != socket) {
        lat += spec.dir_lookup;
        port = st_.ClaimAllPorts(now);  // source-snoop broadcast
      }
    }
    src = osock == socket ? Source::kPeerLocal : Source::kPeerRemote;
    ++st_.stats.peer_transfers;
    // Transitions at the previous owner.
    if (li.owner_state == LineState::kModified && moesi()) {
      // MOESI: the owner keeps the dirty line in Owned state and serves
      // future loads; memory stays stale.
      st_.l1[owner].Contains(line) ? st_.l1[owner].SetState(line, LineState::kOwned)
                                   : st_.l2[owner].SetState(line, LineState::kOwned);
      li.owner_state = LineState::kOwned;
      ++st_.stats.to_owned;
    } else if (li.owner_state != LineState::kOwned) {
      // MESI(F): M writes back (to the inclusive LLC on Xeon), E downgrades;
      // the previous owner becomes a plain sharer.
      Cache& oc = st_.l1[owner].Contains(line) ? st_.l1[owner] : st_.l2[owner];
      oc.SetState(line, LineState::kShared);
      ++st_.stats.to_shared;
      if (inclusive() && li.owner_state == LineState::kModified) {
        st_.llc[osock].Insert(line, LineState::kModified);  // dirty in LLC
      }
      li.sharers.Add(owner);
      li.owner = kNoCpu;
      li.owner_state = LineState::kInvalid;
    }
  } else if (inclusive() && st_.llc[socket].Contains(line)) {
    // Xeon: own-socket LLC serves directly (shared/forward data).
    lat += spec.probe_shared;
    st_.llc[socket].Touch(line);
    src = Source::kLlcLocal;
    ++st_.stats.llc_hits;
  } else if (inclusive() && li.forward != kNoNode &&
             st_.llc[li.forward].Contains(line)) {
    // Xeon: a remote LLC in Forward state responds to the snoop.
    lat += spec.dir_lookup + spec.probe_shared + 2 * spec.LinkCost(socket, li.forward);
    src = Source::kLlcRemote;
    ++st_.stats.llc_hits;
    port = st_.ClaimAllPorts(now);  // source-snoop broadcast
  } else if (!li.in_memory_only && !inclusive()) {
    // Opteron: shared copies exist; the home node supplies the data.
    const int home = li.home;
    lat += spec.probe_shared + spec.LinkCost(socket, home) + spec.LinkCost(home, socket);
    src = home == socket ? Source::kLlcLocal : Source::kLlcRemote;
    ++st_.stats.llc_hits;
    port = st_.ClaimPort(home, now);
  } else {
    // Memory fill at the home node.
    const int home = li.home;
    lat += spec.mem_access + spec.LinkCost(socket, home) + spec.LinkCost(home, socket);
    if (home != socket) {
      lat += spec.ram_remote_extra;
    }
    src = home == socket ? Source::kMemLocal : Source::kMemRemote;
    ++st_.stats.mem_accesses;
    // Xeon must still snoop-confirm no cache holds the line; the Opteron
    // consults only the home directory.
    port = inclusive() ? st_.ClaimAllPorts(now) : st_.ClaimPort(home, now);
  }

  // Requester-side fill: Exclusive if no other copy exists anywhere.
  bool any_llc_other = false;
  if (inclusive()) {
    for (int s = 0; s < spec.num_sockets; ++s) {
      if (s != socket && st_.llc[s].Contains(line)) {
        any_llc_other = true;
      }
    }
  }
  const bool alone = li.owner == kNoCpu && li.sharers.Empty() && !any_llc_other &&
                     li.in_memory_only;
  if (alone) {
    InstallPrivate(cpu, line, LineState::kExclusive);
    li.owner = cpu;
    li.owner_state = LineState::kExclusive;
    ++st_.stats.to_exclusive;
  } else {
    InstallPrivate(cpu, line, LineState::kShared);
    li.sharers.Add(cpu);
    li.was_shared = true;  // Opteron probe filter: line may have sharers now
    ++st_.stats.to_shared;
  }
  if (inclusive()) {
    LlcInsert(socket, line, alone ? LineState::kExclusive : LineState::kShared);
    li.forward = socket;  // MESIF: the newest sharer responds next time
  }
  li.in_memory_only = false;
  return {lat, port, src};
}

AccessResult MultiSocketModel::StoreMiss(CpuId cpu, LineAddr line, LineInfo& li,
                                         AccessType type, Cycles now) {
  const PlatformSpec& spec = st_.spec;
  const int socket = spec.SocketOf(cpu);
  Cycles lat = spec.dir_lookup;
  Cycles port = 0;
  Source src = Source::kMemLocal;

  if (!inclusive()) {
    // --- Opteron (MOESI, incomplete probe filter) ---
    const int home = li.home;
    const bool needs_broadcast =
        li.was_shared || !li.sharers.NoneBut(cpu) || li.owner_state == LineState::kOwned;
    if (li.owner != kNoCpu && li.owner != cpu && !needs_broadcast) {
      // Directed probe-invalidate: the probe filter knows the single owner.
      const int osock = spec.SocketOf(li.owner);
      lat += spec.store_upgrade + spec.LinkCost(socket, home) +
             spec.LinkCost(home, osock) + spec.LinkCost(osock, socket);
      src = osock == socket ? Source::kPeerLocal : Source::kPeerRemote;
      ++st_.stats.peer_transfers;
      port = st_.ClaimPort(home, now);
      if (osock != home) {
        port = std::max(port, st_.ClaimPort(osock, now));
      }
    } else if (needs_broadcast) {
      // The directory does not track sharers: invalidations are broadcast to
      // every node, even when all sharers are local (Section 5.2/5.3 — this
      // is the Opteron's locality problem).
      lat += spec.store_upgrade + spec.LinkCost(socket, home) + spec.broadcast_cost;
      src = Source::kPeerRemote;
      ++st_.stats.broadcasts;
      port = st_.ClaimAllPorts(now);  // every node processes the probe
    } else {
      // Uncached (or own stale): RFO fill from home memory.
      lat += spec.mem_access + spec.LinkCost(socket, home) + spec.LinkCost(home, socket);
      if (home != socket) {
        lat += spec.ram_remote_extra;
      }
      src = home == socket ? Source::kMemLocal : Source::kMemRemote;
      ++st_.stats.mem_accesses;
      port = st_.ClaimPort(home, now);
    }
  } else {
    // --- Xeon (MESIF snoop, inclusive LLC) ---
    const bool outside = CopiesOutsideSocket(li, line, socket);
    const bool inside = st_.llc[socket].Contains(line);
    if (!outside && inside) {
      // All copies within the socket: the LLC core-valid bits direct the
      // invalidations; no cross-socket snoop (footnote 7 of the paper).
      lat += spec.store_upgrade;
      src = Source::kLlcLocal;
      ++st_.stats.llc_hits;
    } else if (outside) {
      // Snoop broadcast; completion gated by the farthest involved socket.
      lat += spec.store_upgrade + spec.store_remote_extra +
             2 * FarthestInvolvedLink(li, line, socket);
      src = Source::kPeerRemote;
      ++st_.stats.peer_transfers;
      port = st_.ClaimAllPorts(now);
    } else {
      // Uncached anywhere: RFO fill from home memory.
      const int home = li.home;
      lat += spec.mem_access + spec.LinkCost(socket, home) + spec.LinkCost(home, socket);
      src = home == socket ? Source::kMemLocal : Source::kMemRemote;
      ++st_.stats.mem_accesses;
      port = st_.ClaimAllPorts(now);  // snoop-confirm no cached copies
    }
  }

  if (IsAtomic(type)) {
    lat += spec.atomic_extra;
  }

  // Invalidate every other copy; the requester becomes the sole M owner.
  if (li.owner != kNoCpu && li.owner != cpu) {
    RemovePrivate(li.owner, line);
    ++st_.stats.invalidations;
  }
  li.sharers.ForEach([&](int sharer) {
    if (sharer != cpu) {
      RemovePrivate(sharer, line);
      ++st_.stats.invalidations;
    }
  });
  li.sharers.Clear();
  if (inclusive()) {
    for (int s = 0; s < spec.num_sockets; ++s) {
      if (s != socket) {
        st_.llc[s].Remove(line);
      }
    }
    LlcInsert(socket, line, LineState::kModified);
    li.forward = socket;
  }
  li.owner = cpu;
  li.owner_state = LineState::kModified;
  li.was_shared = false;
  li.in_memory_only = false;
  InstallPrivate(cpu, line, LineState::kModified);
  ++st_.stats.to_modified;
  return {lat, port, src};
}

void MultiSocketModel::FlushLine(LineAddr line) {
  const auto it = st_.lines.find(line);
  if (it == st_.lines.end()) {
    return;
  }
  LineInfo& li = it->second;
  for (CpuId cpu = 0; cpu < st_.spec.num_cpus; ++cpu) {
    RemovePrivate(cpu, line);
  }
  for (Cache& c : st_.llc) {
    c.Remove(line);
  }
  li.owner = kNoCpu;
  li.owner_state = LineState::kInvalid;
  li.sharers.Clear();
  li.was_shared = false;
  li.in_memory_only = true;
  li.forward = kNoNode;
}

LineState MultiSocketModel::PrivateState(CpuId cpu, LineAddr line) const {
  const LineState s1 = st_.l1[cpu].GetState(line);
  if (s1 != LineState::kInvalid) {
    return s1;
  }
  return st_.l2[cpu].GetState(line);
}

}  // namespace ssync
