// The pluggable-protocol layer over the coherence models.
//
// A Machine's state-transition policy is a CoherenceModel strategy; this
// registry makes the strategy selectable by name, decoupled from the
// PlatformSpec's hardwired kind switch:
//
//   * "paper"  — the calibrated per-machine models reproducing Tables 2-3
//                (MultiSocketModel in its platform-default MOESI/MESIF
//                flavor, NiagaraModel, TileraModel). The default; byte-for-
//                byte identical to the pre-registry behavior.
//   * "mesi"   — the multi-socket engine with the Owned state disabled: a
//                load of a peer's Modified line writes back and demotes to
//                Shared, so dirty sharing always round-trips memory/LLC.
//   * "moesi"  — the Owned state forced on: the previous owner keeps serving
//                the dirty line, memory stays stale (the Opteron's protocol,
//                applied to any multi-socket spec).
//
// Every protocol declares which specs it supports: the generic mesi/moesi
// variants run on the multi-socket geometries only (the Niagara duplicate-tag
// and Tilera home-slice engines are structurally different protocols, not
// parameterizations of one). The `trace_replay` experiment sweeps this
// registry to answer "how would this workload behave under protocol X on
// machine Y" — the paper's premise made programmable.
#ifndef SRC_CCSIM_PROTOCOL_H_
#define SRC_CCSIM_PROTOCOL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ccsim/machine.h"

namespace ssync {

struct ProtocolInfo {
  std::string name;
  std::string summary;
};

class ProtocolRegistry {
 public:
  using Factory = std::unique_ptr<CoherenceModel> (*)(MachineState& st);
  using SupportsFn = bool (*)(const PlatformSpec& spec);

  struct Entry {
    ProtocolInfo info;
    Factory factory;
    SupportsFn supports;
  };

  // The process-wide registry, pre-populated with the builtin protocols.
  static ProtocolRegistry& Global();

  // False (and the entry is discarded) on a duplicate name.
  bool Register(ProtocolInfo info, Factory factory, SupportsFn supports);

  const Entry* Find(const std::string& name) const;

  // Protocol names in registration order (builtins first).
  std::vector<std::string> Names() const;

 private:
  ProtocolRegistry();  // registers the builtins

  std::vector<Entry> entries_;
};

// Builds the named protocol's model over `st`. nullptr when the name is
// unknown or the protocol does not support st.spec (callers that want a
// diagnostic consult ProtocolRegistry first).
std::unique_ptr<CoherenceModel> MakeProtocol(const std::string& name, MachineState& st);

}  // namespace ssync

#endif  // SRC_CCSIM_PROTOCOL_H_
