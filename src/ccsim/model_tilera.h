// Coherence model for the Tilera TILE-Gx36: a non-uniform single-socket CMP.
//
// 36 tiles on a 6x6 mesh. Every line has a home tile; the home tile's L2
// slice acts as that line's LLC and holds an exact directory of L1 sharers
// (Dynamic Distributed Cache). Remote tiles cache lines in their L1 only;
// stores write through to the home slice and invalidate sharers; atomics
// execute at the home tile (remote atomics — which is why FAI is cheap).
// Latency depends on the Manhattan distance to the home tile.
#ifndef SRC_CCSIM_MODEL_TILERA_H_
#define SRC_CCSIM_MODEL_TILERA_H_

#include "src/ccsim/machine.h"

namespace ssync {

class TileraModel : public CoherenceModel {
 public:
  explicit TileraModel(MachineState& st) : CoherenceModel(st) {}

  AccessResult AccessAt(CpuId cpu, LineAddr line, AccessType type, Cycles now) override;
  void FlushLine(LineAddr line) override;
  LineState PrivateState(CpuId cpu, LineAddr line) const override;

 private:
  // Cost of reaching the home slice from `tile`.
  Cycles HomeCost(CpuId tile, NodeId home) const;
  // Cost of a DRAM fill observed from `tile`.
  Cycles DramCost(CpuId tile, NodeId home) const;
  // Sharers other than the requester itself.
  int OtherSharers(const LineInfo& li, CpuId cpu) const;
  void InvalidateSharers(LineAddr line, LineInfo& li, int except_tile);
  // Ensures the home slice holds the line (inserting and handling slice
  // evictions); returns true if the line had to be fetched from memory.
  bool EnsureAtHome(LineAddr line, LineInfo& li);
};

}  // namespace ssync

#endif  // SRC_CCSIM_MODEL_TILERA_H_
