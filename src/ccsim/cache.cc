#include "src/ccsim/cache.h"

#include "src/util/check.h"

namespace ssync {

LineState Cache::GetState(LineAddr line) const {
  const auto it = map_.find(line);
  return it == map_.end() ? LineState::kInvalid : it->second.state;
}

void Cache::Touch(LineAddr line) {
  const auto it = map_.find(line);
  if (it == map_.end()) {
    return;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
}

Cache::Victim Cache::Insert(LineAddr line, LineState state) {
  SSYNC_DCHECK(state != LineState::kInvalid);
  const auto it = map_.find(line);
  if (it != map_.end()) {
    it->second.state = state;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return Victim{};
  }
  Victim victim;
  if (capacity_ != 0 && map_.size() >= capacity_) {
    const LineAddr lru_line = lru_.back();
    const auto lru_entry = map_.find(lru_line);
    SSYNC_DCHECK(lru_entry != map_.end());
    victim.valid = true;
    victim.line = lru_line;
    victim.state = lru_entry->second.state;
    lru_.pop_back();
    map_.erase(lru_entry);
  }
  lru_.push_front(line);
  map_.emplace(line, Entry{state, lru_.begin()});
  return victim;
}

void Cache::SetState(LineAddr line, LineState state) {
  const auto it = map_.find(line);
  SSYNC_CHECK(it != map_.end());
  it->second.state = state;
}

void Cache::Remove(LineAddr line) {
  const auto it = map_.find(line);
  if (it == map_.end()) {
    return;
  }
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

void Cache::Clear() {
  map_.clear();
  lru_.clear();
}

}  // namespace ssync
