#include "src/ccsim/machine.h"

#include <cstring>

#include "src/ccsim/protocol.h"
#include "src/util/check.h"

namespace ssync {
namespace {

// Hardware message passing: register-file injection/extraction costs at the
// two endpoints (the mesh transit itself comes from mp_base/mp_per_hop).
constexpr Cycles kMpInjectCost = 15;
constexpr Cycles kMpDequeueCost = 15;
constexpr Cycles kMpPollCost = 4;

// Issue cost of a non-blocking prefetch instruction.
constexpr Cycles kPrefetchIssueCost = 4;

// Per-line cost of scanning locally valid lines in a polling loop (the
// loads are independent, so they pipeline at the issue rate).
constexpr Cycles kPollHitCost = 2;

}  // namespace

MachineState::MachineState(const PlatformSpec& s) : spec(s) {
  if (spec.port_service > 0) {
    port_busy.assign(
        spec.kind == PlatformKind::kTilera ? spec.num_cpus : spec.num_sockets, 0);
  }
  switch (spec.kind) {
    case PlatformKind::kNiagara: {
      const int cores = spec.num_cpus / spec.cpus_per_core;
      for (int i = 0; i < cores; ++i) {
        l1.emplace_back(spec.l1_lines);
      }
      llc.emplace_back(spec.llc_lines);
      break;
    }
    case PlatformKind::kTilera: {
      for (int i = 0; i < spec.num_cpus; ++i) {
        l1.emplace_back(spec.l1_lines);
        l2.emplace_back(spec.llc_lines);  // home slice of tile i
      }
      break;
    }
    default: {  // multi-socket platforms
      for (int i = 0; i < spec.num_cpus; ++i) {
        l1.emplace_back(spec.l1_lines);
        l2.emplace_back(spec.l2_lines);
      }
      if (spec.inclusive_llc) {
        for (int sk = 0; sk < spec.num_sockets; ++sk) {
          llc.emplace_back(spec.llc_lines);
        }
      }
      break;
    }
  }
}

LineInfo& MachineState::Line(LineAddr line, CpuId first_toucher) {
  LineInfo& li = lines[line];
  if (li.home == kNoNode) {
    li.home = spec.MemNodeOf(first_toucher);
  }
  return li;
}

Cycles MachineState::ClaimPort(int node, Cycles now) {
  if (port_busy.empty()) {
    return 0;
  }
  SSYNC_DCHECK(node >= 0 && node < static_cast<int>(port_busy.size()));
  Cycles& busy = port_busy[node];
  const Cycles delay = busy > now ? busy - now : 0;
  busy = now + delay + spec.port_service;
  stats.port_stall_cycles += delay;
  return delay;
}

Cycles MachineState::ClaimAllPorts(Cycles now) {
  Cycles worst = 0;
  for (std::size_t node = 0; node < port_busy.size(); ++node) {
    worst = std::max(worst, ClaimPort(static_cast<int>(node), now));
  }
  return worst;
}

Cycles MachineState::Claim(LineInfo& li, Cycles now, Cycles latency, AccessType type) {
  const Cycles stall = li.busy_until > now ? li.busy_until - now : 0;
  // How long this transaction blocks the line for its successor:
  //  * atomics hold the line end-to-end — consecutive RMWs chase ownership
  //    through the previous owner, so they serialize at the full latency
  //    (this is what bounds the Figure-4 plateaus);
  //  * stores serialize at the directory/home for about half the flight;
  //  * loads and prefetch transfers pipeline: the directory's per-request
  //    processing is all that the next request has to wait for.
  Cycles occupancy;
  if (IsAtomic(type)) {
    occupancy = latency;
  } else if (type == AccessType::kStore) {
    occupancy = (latency + 1) / 2;
  } else {
    occupancy = std::min<Cycles>((latency + 1) / 2, 40);
  }
  li.busy_until = now + stall + occupancy;
  stats.stall_cycles += stall;
  return stall;
}

Machine::Machine(const PlatformSpec& spec, const std::string& protocol)
    : st_(spec), protocol_(protocol), model_(MakeProtocol(protocol, st_)) {
  SSYNC_CHECK(model_ != nullptr);  // unknown protocol, or unsupported on this spec
  prefetch_.resize(spec.num_cpus);
  if (spec.has_hw_mp) {
    mp_.resize(static_cast<std::size_t>(spec.num_cpus) * spec.num_cpus);
  }
}

Machine::~Machine() = default;

void Machine::ResetTimeDomain() {
  for (auto& [line, info] : st_.lines) {
    (void)line;
    info.busy_until = 0;
  }
  for (auto& queue : mp_) {
    queue.clear();
  }
  for (auto& slot : prefetch_) {
    slot.valid = false;
  }
  for (Cycles& busy : st_.port_busy) {
    busy = 0;
  }
}

AccessResult Machine::AccessBegin(LineAddr line, AccessType type) {
  Engine* eng = Engine::Current();
  SSYNC_DCHECK(eng != nullptr);
  eng->SyncPoint();
  // An access to a line with an async prefetch in flight waits for the
  // prefetch to land first (the data cannot be consumed earlier than the
  // hardware delivers it); it then typically completes as a local hit.
  PendingPrefetch& slot = prefetch_[eng->current_cpu()];
  if (slot.valid && slot.line == line) {
    slot.valid = false;
    if (slot.ready > eng->now()) {
      eng->Advance(slot.ready - eng->now());
    }
  }
  return model_->AccessAt(eng->current_cpu(), line, type, eng->now());
}

void Machine::AccessFinish(const AccessResult& r) {
  Engine::Current()->Advance(r.total());
}

AccessResult Machine::Access(LineAddr line, AccessType type) {
  const AccessResult r = AccessBegin(line, type);
  AccessFinish(r);
  return r;
}

AccessResult Machine::PollBegin(LineAddr line, bool rfo) {
  Engine* eng = Engine::Current();
  SSYNC_DCHECK(eng != nullptr);
  // Synchronize to virtual-time order BEFORE inspecting global state: the
  // sync point may yield to earlier-clock fibers whose stores change this
  // line. Reading first would let a poll consume a flag value without the
  // coherence transaction that delivers it.
  eng->SyncPoint();
  const LineState state = model_->PrivateState(eng->current_cpu(), line);
  const bool hit = rfo ? state == LineState::kModified || state == LineState::kExclusive
                       : state != LineState::kInvalid;
  if (hit) {
    ++st_.stats.accesses;
    ++st_.stats.l1_hits;
    return AccessResult{kPollHitCost, 0, Source::kL1};
  }
  return AccessBegin(line, rfo ? AccessType::kRfo : AccessType::kLoad);
}

AccessResult Machine::Poll(LineAddr line, bool rfo) {
  const AccessResult r = PollBegin(line, rfo);
  AccessFinish(r);
  return r;
}

void Machine::PrefetchAsync(LineAddr line, bool for_write) {
  Engine* eng = Engine::Current();
  SSYNC_DCHECK(eng != nullptr);
  eng->SyncPoint();
  const CpuId cpu = eng->current_cpu();
  // One outstanding slot: issuing a second prefetch while the first is in
  // flight waits for the first to land (otherwise stacking prefetches would
  // evade the ready-time enforcement in Access()).
  PendingPrefetch& slot = prefetch_[cpu];
  if (slot.valid && slot.ready > eng->now()) {
    eng->Advance(slot.ready - eng->now());
  }
  const AccessResult r = for_write
                             ? model_->PrefetchwAt(cpu, line, eng->now())
                             : model_->AccessAt(cpu, line, AccessType::kLoad, eng->now());
  slot = PendingPrefetch{line, eng->now() + r.total(), true};
  eng->Advance(kPrefetchIssueCost);
}

AccessResult Machine::PrefetchwBegin(LineAddr line) {
  Engine* eng = Engine::Current();
  SSYNC_DCHECK(eng != nullptr);
  eng->SyncPoint();
  return model_->PrefetchwAt(eng->current_cpu(), line, eng->now());
}

AccessResult Machine::Prefetchw(LineAddr line) {
  const AccessResult r = PrefetchwBegin(line);
  AccessFinish(r);
  return r;
}

void Machine::Fence() {
  Engine* eng = Engine::Current();
  SSYNC_DCHECK(eng != nullptr);
  eng->Advance(st_.spec.fence_cost);
}

AccessResult Machine::AccessAt(CpuId cpu, LineAddr line, AccessType type, Cycles now) {
  return model_->AccessAt(cpu, line, type, now);
}

AccessResult Machine::PrefetchwAt(CpuId cpu, LineAddr line, Cycles now) {
  return model_->PrefetchwAt(cpu, line, now);
}

void Machine::SetHome(LineAddr line, NodeId node) {
  SSYNC_CHECK_GE(node, 0);
  st_.lines[line].home = node;
}

LineState Machine::PrivateState(CpuId cpu, LineAddr line) const {
  return model_->PrivateState(cpu, line);
}

LineState Machine::StrictPrivateState(CpuId cpu, LineAddr line) const {
  if (st_.spec.kind == PlatformKind::kTilera) {
    return st_.l1[cpu].GetState(line);
  }
  return model_->PrivateState(cpu, line);
}

LineState Machine::LlcState(int socket, LineAddr line) const {
  if (st_.llc.empty()) {
    return LineState::kInvalid;
  }
  return st_.llc[socket].GetState(line);
}

const LineInfo* Machine::FindLine(LineAddr line) const {
  const auto it = st_.lines.find(line);
  return it == st_.lines.end() ? nullptr : &it->second;
}

void Machine::FlushLine(LineAddr line) { model_->FlushLine(line); }

void Machine::DemoteToL2(CpuId cpu, LineAddr line) {
  Cache& l1 = st_.L1Of(cpu);
  const LineState s = l1.GetState(line);
  if (s == LineState::kInvalid || st_.l2.empty()) {
    return;
  }
  l1.Remove(line);
  st_.l2[cpu].Insert(line, s);
}

void Machine::HwSend(CpuId to, const void* data, std::uint32_t len) {
  SSYNC_CHECK(has_hw_mp());
  SSYNC_CHECK_LE(len, 64u);
  Engine* eng = Engine::Current();
  SSYNC_DCHECK(eng != nullptr);
  eng->SyncPoint();
  const CpuId from = eng->current_cpu();
  const int hops = st_.spec.MeshHops(from, to);
  const Cycles transit =
      st_.spec.mp_base + static_cast<Cycles>(hops) * st_.spec.mp_per_hop_x10 / 10;
  MpMessage msg;
  msg.ready = eng->now() + transit;
  msg.len = len;
  std::memcpy(msg.bytes.data(), data, len);
  mp_[static_cast<std::size_t>(to) * st_.spec.num_cpus + from].push_back(msg);
  eng->Advance(kMpInjectCost);
}

bool Machine::HwTryRecv(CpuId from, void* data, std::uint32_t* len) {
  SSYNC_CHECK(has_hw_mp());
  Engine* eng = Engine::Current();
  SSYNC_DCHECK(eng != nullptr);
  const CpuId to = eng->current_cpu();
  auto& queue = mp_[static_cast<std::size_t>(to) * st_.spec.num_cpus + from];
  eng->SyncPoint();
  if (queue.empty() || queue.front().ready > eng->now()) {
    eng->Advance(kMpPollCost);
    return false;
  }
  const MpMessage& msg = queue.front();
  std::memcpy(data, msg.bytes.data(), msg.len);
  if (len != nullptr) {
    *len = msg.len;
  }
  queue.pop_front();
  eng->Advance(kMpDequeueCost);
  return true;
}

}  // namespace ssync
