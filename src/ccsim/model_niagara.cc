#include "src/ccsim/model_niagara.h"

#include "src/util/check.h"

namespace ssync {

void NiagaraModel::InvalidateL1Sharers(LineAddr line, LineInfo& li, int except_core) {
  li.sharers.ForEach([&](int core) {
    if (core != except_core) {
      st_.l1[core].Remove(line);
      ++st_.stats.invalidations;
    }
  });
  li.sharers.Clear();
  if (except_core >= 0 && st_.l1[except_core].Contains(line)) {
    li.sharers.Add(except_core);
  }
}

AccessResult NiagaraModel::AccessAt(CpuId cpu, LineAddr line, AccessType type,
                                    Cycles now) {
  ++st_.stats.accesses;
  const PlatformSpec& spec = st_.spec;
  LineInfo& li = st_.Line(line, cpu);
  const int core = spec.CoreOf(cpu);
  Cache& l1 = st_.l1[core];
  Cache& llc = st_.llc[0];

  if (type == AccessType::kLoad) {
    if (l1.Contains(line)) {
      l1.Touch(line);
      ++st_.stats.l1_hits;
      return {spec.l1_lat, 0, Source::kL1};
    }
    Cycles lat = spec.llc_lat;
    Source src = Source::kLlcLocal;
    if (llc.Contains(line)) {
      llc.Touch(line);
      ++st_.stats.llc_hits;
    } else {
      lat = spec.ram_lat;
      src = Source::kMemLocal;
      ++st_.stats.mem_accesses;
      const Cache::Victim v = llc.Insert(line, LineState::kShared);
      if (v.valid) {
        // LLC eviction kills the duplicate tags; back-invalidate the L1s.
        LineInfo& victim_li = st_.lines[v.line];
        victim_li.sharers.ForEach([&](int c) { st_.l1[c].Remove(v.line); });
        victim_li.sharers.Clear();
        victim_li.in_memory_only = true;
      }
    }
    const Cache::Victim v1 = l1.Insert(line, LineState::kShared);
    if (v1.valid) {
      st_.lines[v1.line].sharers.Remove(core);  // write-through: clean victim
    }
    li.sharers.Add(core);
    ++st_.stats.to_shared;
    li.in_memory_only = false;
    const Cycles stall = st_.Claim(li, now, lat, type);
    return {lat, stall, src};
  }

  // Stores and atomics: the write-through L1 sends every write to the LLC,
  // where the duplicate-tag directory invalidates other cores' L1 copies.
  Cycles lat = IsAtomic(type) ? spec.atomic_op.Get(type) : spec.llc_lat;
  Source src = Source::kLlcLocal;
  if (!llc.Contains(line)) {
    lat += spec.ram_lat - spec.llc_lat;  // fill from memory first
    src = Source::kMemLocal;
    ++st_.stats.mem_accesses;
    llc.Insert(line, LineState::kModified);
    ++st_.stats.to_modified;
  } else {
    llc.Touch(line);
    if (llc.GetState(line) != LineState::kModified) {
      ++st_.stats.to_modified;
    }
    llc.SetState(line, LineState::kModified);
    ++st_.stats.llc_hits;
  }
  // Atomics do not leave an L1 copy (they execute at the LLC); plain stores
  // write through but keep/allocate the writer's L1 copy, so a subsequent
  // same-core load is an L1 hit (Table 2 "same core" loads: 3 cycles).
  if (IsAtomic(type)) {
    l1.Remove(line);
    InvalidateL1Sharers(line, li, -1);
  } else {
    const Cache::Victim v = l1.Insert(line, LineState::kShared);
    if (v.valid) {
      st_.lines[v.line].sharers.Remove(core);
    }
    InvalidateL1Sharers(line, li, core);
  }
  li.last_writer = cpu;
  li.in_memory_only = false;
  const Cycles stall = st_.Claim(li, now, lat, type);
  return {lat, stall, src};
}

void NiagaraModel::FlushLine(LineAddr line) {
  const auto it = st_.lines.find(line);
  if (it == st_.lines.end()) {
    return;
  }
  LineInfo& li = it->second;
  li.sharers.ForEach([&](int core) { st_.l1[core].Remove(line); });
  li.sharers.Clear();
  st_.llc[0].Remove(line);
  li.in_memory_only = true;
}

LineState NiagaraModel::PrivateState(CpuId cpu, LineAddr line) const {
  return st_.l1[st_.spec.CoreOf(cpu)].GetState(line);
}

}  // namespace ssync
