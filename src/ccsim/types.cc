#include "src/ccsim/types.h"

namespace ssync {

const char* ToString(LineState s) {
  switch (s) {
    case LineState::kInvalid:
      return "I";
    case LineState::kShared:
      return "S";
    case LineState::kExclusive:
      return "E";
    case LineState::kOwned:
      return "O";
    case LineState::kModified:
      return "M";
    case LineState::kForward:
      return "F";
  }
  return "?";
}

const char* ToString(AccessType t) {
  switch (t) {
    case AccessType::kLoad:
      return "load";
    case AccessType::kStore:
      return "store";
    case AccessType::kRfo:
      return "prefetchw";
    case AccessType::kCas:
      return "CAS";
    case AccessType::kFai:
      return "FAI";
    case AccessType::kTas:
      return "TAS";
    case AccessType::kSwap:
      return "SWAP";
  }
  return "?";
}

const char* ToString(Source s) {
  switch (s) {
    case Source::kL1:
      return "L1";
    case Source::kL2:
      return "L2";
    case Source::kLlcLocal:
      return "LLC(local)";
    case Source::kPeerLocal:
      return "peer(local)";
    case Source::kPeerRemote:
      return "peer(remote)";
    case Source::kLlcRemote:
      return "LLC(remote)";
    case Source::kMemLocal:
      return "mem(local)";
    case Source::kMemRemote:
      return "mem(remote)";
  }
  return "?";
}

}  // namespace ssync
