#include "src/ccsim/protocol.h"

#include "src/ccsim/model_multisocket.h"
#include "src/ccsim/model_niagara.h"
#include "src/ccsim/model_tilera.h"

namespace ssync {

namespace {

bool IsMultiSocket(const PlatformSpec& spec) {
  return spec.kind != PlatformKind::kNiagara && spec.kind != PlatformKind::kTilera;
}

bool AnySpec(const PlatformSpec&) { return true; }

std::unique_ptr<CoherenceModel> MakePaper(MachineState& st) {
  switch (st.spec.kind) {
    case PlatformKind::kNiagara:
      return std::make_unique<NiagaraModel>(st);
    case PlatformKind::kTilera:
      return std::make_unique<TileraModel>(st);
    default:
      return std::make_unique<MultiSocketModel>(st);
  }
}

std::unique_ptr<CoherenceModel> MakeMesi(MachineState& st) {
  return std::make_unique<MultiSocketModel>(st, ProtocolVariant::kMesi);
}

std::unique_ptr<CoherenceModel> MakeMoesi(MachineState& st) {
  return std::make_unique<MultiSocketModel>(st, ProtocolVariant::kMoesi);
}

}  // namespace

ProtocolRegistry::ProtocolRegistry() {
  Register({"paper", "each platform's calibrated model (Tables 2-3), verbatim"},
           &MakePaper, &AnySpec);
  Register({"mesi", "multi-socket engine, Owned state off (dirty loads write back)"},
           &MakeMesi, &IsMultiSocket);
  Register({"moesi", "multi-socket engine, Owned state on (dirty lines stay cached)"},
           &MakeMoesi, &IsMultiSocket);
}

ProtocolRegistry& ProtocolRegistry::Global() {
  static ProtocolRegistry* registry = new ProtocolRegistry();
  return *registry;
}

bool ProtocolRegistry::Register(ProtocolInfo info, Factory factory, SupportsFn supports) {
  if (Find(info.name) != nullptr) {
    return false;
  }
  entries_.push_back(Entry{std::move(info), factory, supports});
  return true;
}

const ProtocolRegistry::Entry* ProtocolRegistry::Find(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.info.name == name) {
      return &e;
    }
  }
  return nullptr;
}

std::vector<std::string> ProtocolRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) {
    names.push_back(e.info.name);
  }
  return names;
}

std::unique_ptr<CoherenceModel> MakeProtocol(const std::string& name, MachineState& st) {
  const ProtocolRegistry::Entry* entry = ProtocolRegistry::Global().Find(name);
  if (entry == nullptr || !entry->supports(st.spec)) {
    return nullptr;
  }
  return entry->factory(st);
}

}  // namespace ssync
