// A set of cache lines with LRU replacement.
//
// Models one physical cache (an L1, an L2, an LLC slice). Tracks per-line
// coherence state; capacity evictions return the victim so the owner
// (coherence model) can cascade writebacks and directory updates.
// Full associativity is assumed — the experiments in the paper are not
// conflict-miss sensitive and the paper never varies associativity.
#ifndef SRC_CCSIM_CACHE_H_
#define SRC_CCSIM_CACHE_H_

#include <cstddef>
#include <list>
#include <unordered_map>

#include "src/ccsim/types.h"

namespace ssync {

class Cache {
 public:
  struct Victim {
    bool valid = false;
    LineAddr line = 0;
    LineState state = LineState::kInvalid;
  };

  // capacity_lines == 0 means unbounded (used by directory-only structures).
  explicit Cache(std::size_t capacity_lines) : capacity_(capacity_lines) {}

  // State of `line`, kInvalid if absent. Does not touch LRU.
  LineState GetState(LineAddr line) const;
  bool Contains(LineAddr line) const { return GetState(line) != LineState::kInvalid; }

  // Moves the line to MRU position. No-op if absent.
  void Touch(LineAddr line);

  // Inserts or updates a line; returns the evicted victim if the insert
  // overflowed capacity. Also refreshes LRU position.
  Victim Insert(LineAddr line, LineState state);

  // Changes the state of a present line without touching LRU.
  void SetState(LineAddr line, LineState state);

  // Removes a line if present (invalidation).
  void Remove(LineAddr line);

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

  void Clear();

 private:
  struct Entry {
    LineState state;
    std::list<LineAddr>::iterator lru_it;
  };

  std::size_t capacity_;
  std::unordered_map<LineAddr, Entry> map_;
  std::list<LineAddr> lru_;  // front = MRU, back = LRU
};

}  // namespace ssync

#endif  // SRC_CCSIM_CACHE_H_
