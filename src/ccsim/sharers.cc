// SharerSet is header-only; this translation unit exists so the module has a
// home for future non-inline additions and keeps the build list uniform.
#include "src/ccsim/sharers.h"
