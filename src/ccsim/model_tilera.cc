#include "src/ccsim/model_tilera.h"

#include "src/util/check.h"

namespace ssync {

Cycles TileraModel::HomeCost(CpuId tile, NodeId home) const {
  if (tile == home) {
    return st_.spec.slice_local;
  }
  const int hops = st_.spec.MeshHops(tile, home);
  return st_.spec.remote_base +
         static_cast<Cycles>(hops) * st_.spec.per_hop_x10 / 10;
}

Cycles TileraModel::DramCost(CpuId tile, NodeId home) const {
  // Memory fills cost the flat DRAM latency plus the mesh distance to the
  // home slice (Table 2 "Invalid" row: 118 @ 1 hop .. 162 @ max hops).
  const int hops = st_.spec.MeshHops(tile, home);
  return st_.spec.ram_lat + static_cast<Cycles>(hops) * st_.spec.ram_per_hop_x10 / 10;
}

int TileraModel::OtherSharers(const LineInfo& li, CpuId cpu) const {
  return li.sharers.Count() - (li.sharers.Contains(cpu) ? 1 : 0);
}

void TileraModel::InvalidateSharers(LineAddr line, LineInfo& li, int except_tile) {
  li.sharers.ForEach([&](int tile) {
    if (tile != except_tile) {
      st_.l1[tile].Remove(line);
      ++st_.stats.invalidations;
    }
  });
  li.sharers.Clear();
  if (except_tile >= 0 && st_.l1[except_tile].Contains(line)) {
    li.sharers.Add(except_tile);
  }
}

bool TileraModel::EnsureAtHome(LineAddr line, LineInfo& li) {
  Cache& slice = st_.l2[li.home];
  if (slice.Contains(line)) {
    slice.Touch(line);
    ++st_.stats.llc_hits;
    return false;
  }
  ++st_.stats.mem_accesses;
  const Cache::Victim victim = slice.Insert(line, LineState::kShared);
  if (victim.valid) {
    // Slice capacity eviction: the directory entry disappears with the line,
    // so the L1 sharers are invalidated.
    LineInfo& victim_li = st_.lines[victim.line];
    victim_li.sharers.ForEach([&](int tile) { st_.l1[tile].Remove(victim.line); });
    victim_li.sharers.Clear();
    victim_li.in_memory_only = true;
  }
  return true;
}

AccessResult TileraModel::AccessAt(CpuId cpu, LineAddr line, AccessType type,
                                   Cycles now) {
  ++st_.stats.accesses;
  const PlatformSpec& spec = st_.spec;
  LineInfo& li = st_.Line(line, cpu);
  Cache& l1 = st_.l1[cpu];

  if (type == AccessType::kLoad) {
    if (l1.Contains(line)) {
      l1.Touch(line);
      ++st_.stats.l1_hits;
      return {spec.l1_lat, 0, Source::kL1};
    }
    Cycles lat;
    Source src;
    if (EnsureAtHome(line, li)) {
      lat = DramCost(cpu, li.home);
      src = Source::kMemLocal;
    } else {
      lat = HomeCost(cpu, li.home);
      src = li.home == cpu ? Source::kLlcLocal : Source::kLlcRemote;
      if (li.home == cpu && li.written && li.last_writer != cpu) {
        // The home tile re-reading data last written by another tile pays a
        // probe on top of its slice hit (Table 2 "other core": 24 cycles).
        lat += spec.probe_owner;
        li.written = false;
      }
    }
    const Cache::Victim v1 = l1.Insert(line, LineState::kShared);
    if (v1.valid) {
      st_.lines[v1.line].sharers.Remove(cpu);
    }
    li.sharers.Add(cpu);
    li.in_memory_only = false;
    ++st_.stats.to_shared;
    // Every request is serviced by the home tile's slice directory; hot
    // lines that share a home tile queue behind each other (the source of
    // the Tilera's contention sensitivity vs. the banked Niagara LLC).
    Cycles stall = li.home == cpu ? 0 : st_.ClaimPort(li.home, now);
    stall += st_.Claim(li, now + stall, lat, type);
    return {lat, stall, src};
  }

  // Stores and atomics execute at the home tile (write-through / remote
  // atomic operations). Invalidating a crowd of sharers (>= 2) costs extra;
  // displacing the single previous writer is part of the base path.
  const bool crowd = OtherSharers(li, cpu) >= 2;
  const bool from_memory = EnsureAtHome(line, li);
  Cycles lat;
  Source src = li.home == cpu ? Source::kLlcLocal : Source::kLlcRemote;
  if (IsAtomic(type)) {
    lat = (from_memory ? DramCost(cpu, li.home)
                       : (li.home == cpu ? spec.slice_local : HomeCost(cpu, li.home))) +
          spec.atomic_op.Get(type);
    if (crowd) {
      lat += spec.atomic_shared_extra.Get(type);
    }
  } else if (li.home == cpu) {
    lat = from_memory ? DramCost(cpu, li.home) + spec.store_extra
                      : spec.slice_local + spec.probe_owner;  // "same core": 24
  } else {
    lat = (from_memory ? DramCost(cpu, li.home) : HomeCost(cpu, li.home)) +
          spec.store_extra;
    if (crowd) {
      lat += spec.store_shared_extra;
    }
  }
  if (from_memory) {
    src = Source::kMemLocal;
  }
  if (st_.l2[li.home].GetState(line) != LineState::kModified) {
    ++st_.stats.to_modified;
  }
  st_.l2[li.home].SetState(line, LineState::kModified);
  // Stores write through to the home slice but keep/allocate the writer's L1
  // copy (same-tile reload is an L1 hit); atomics do not allocate.
  if (IsAtomic(type)) {
    l1.Remove(line);
    InvalidateSharers(line, li, -1);
  } else {
    const Cache::Victim v = l1.Insert(line, LineState::kShared);
    if (v.valid) {
      st_.lines[v.line].sharers.Remove(cpu);
    }
    InvalidateSharers(line, li, cpu);
  }
  li.written = true;
  li.last_writer = cpu;
  li.in_memory_only = false;
  Cycles stall = li.home == cpu ? 0 : st_.ClaimPort(li.home, now);
  stall += st_.Claim(li, now + stall, lat, type);
  return {lat, stall, src};
}

void TileraModel::FlushLine(LineAddr line) {
  const auto it = st_.lines.find(line);
  if (it == st_.lines.end()) {
    return;
  }
  LineInfo& li = it->second;
  li.sharers.ForEach([&](int tile) { st_.l1[tile].Remove(line); });
  li.sharers.Clear();
  st_.l2[li.home].Remove(line);
  li.written = false;
  li.last_writer = kNoCpu;
  li.in_memory_only = true;
}

LineState TileraModel::PrivateState(CpuId cpu, LineAddr line) const {
  const LineState s = st_.l1[cpu].GetState(line);
  if (s != LineState::kInvalid) {
    return s;
  }
  // The home slice counts as the tile's own L2.
  const auto it = st_.lines.find(line);
  if (it != st_.lines.end() && it->second.home == cpu) {
    return st_.l2[cpu].GetState(line);
  }
  return LineState::kInvalid;
}

}  // namespace ssync
