// Coherence model for the Sun Niagara 2: a uniform single-socket CMP.
//
// Eight cores x eight hardware strands; each core's strands share a
// write-through L1D; a crossbar connects all cores to a shared LLC at a
// uniform 24-cycle distance; a duplicate-tag directory at the LLC tracks L1
// sharers exactly. Because the L1s are write-through, the LLC always holds
// current data, which is why every cross-core operation costs ~the LLC
// latency regardless of MESI state (paper Table 2).
#ifndef SRC_CCSIM_MODEL_NIAGARA_H_
#define SRC_CCSIM_MODEL_NIAGARA_H_

#include "src/ccsim/machine.h"

namespace ssync {

class NiagaraModel : public CoherenceModel {
 public:
  explicit NiagaraModel(MachineState& st) : CoherenceModel(st) {}

  AccessResult AccessAt(CpuId cpu, LineAddr line, AccessType type, Cycles now) override;
  void FlushLine(LineAddr line) override;
  LineState PrivateState(CpuId cpu, LineAddr line) const override;

 private:
  void InvalidateL1Sharers(LineAddr line, LineInfo& li, int except_core);
};

}  // namespace ssync

#endif  // SRC_CCSIM_MODEL_NIAGARA_H_
