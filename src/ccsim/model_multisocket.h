// Coherence model for the multi-socket machines: Opteron (MOESI, home-node
// directory with an incomplete probe filter, non-inclusive caches) and Xeon
// (MESIF, broadcast snoop across sockets, inclusive per-socket LLC with exact
// in-socket tracking). The spec flags incomplete_directory / inclusive_llc /
// has_owned_state select the behavioral differences.
#ifndef SRC_CCSIM_MODEL_MULTISOCKET_H_
#define SRC_CCSIM_MODEL_MULTISOCKET_H_

#include <cstdint>

#include "src/ccsim/machine.h"

namespace ssync {

// Which state-transition policy the multi-socket engine runs. The platform
// default follows spec.has_owned_state (MOESI on the Opteron, MESIF on the
// Xeon); the explicit variants force the Owned state on or off regardless of
// the spec, so any multi-socket geometry can be replayed under either policy
// (the "mesi"/"moesi" registry protocols).
enum class ProtocolVariant : std::uint8_t {
  kPlatformDefault,
  kMesi,
  kMoesi,
};

class MultiSocketModel : public CoherenceModel {
 public:
  explicit MultiSocketModel(MachineState& st,
                            ProtocolVariant variant = ProtocolVariant::kPlatformDefault)
      : CoherenceModel(st), variant_(variant) {}

  AccessResult AccessAt(CpuId cpu, LineAddr line, AccessType type, Cycles now) override;
  void FlushLine(LineAddr line) override;
  LineState PrivateState(CpuId cpu, LineAddr line) const override;

 private:
  // Miss paths: compute the protocol latency and apply all state transitions.
  AccessResult LoadMiss(CpuId cpu, LineAddr line, LineInfo& li, Cycles now);
  AccessResult StoreMiss(CpuId cpu, LineAddr line, LineInfo& li, AccessType type,
                         Cycles now);

  // Installs a line into the requester's L1, cascading evictions L1->L2->out.
  void InstallPrivate(CpuId cpu, LineAddr line, LineState state);
  // Moves a line from the L2 into the L1 (L2 hit promotion).
  void PromoteToL1(CpuId cpu, LineAddr line, LineState state);
  // Drops a line from one cpu's private caches (invalidation; no writeback
  // latency is charged — the line's data is globally tracked).
  void RemovePrivate(CpuId cpu, LineAddr line);
  // Handles a dirty/clean victim leaving a private L2.
  void HandleL2Victim(CpuId cpu, const Cache::Victim& victim);
  // Xeon: inserts into the socket LLC, back-invalidating on capacity victims.
  void LlcInsert(int socket, LineAddr line, LineState state);

  // True if any socket other than `socket` holds the line (private or LLC).
  bool CopiesOutsideSocket(const LineInfo& li, LineAddr line, int socket) const;
  // Farthest remote socket involved with the line (for snoop response time).
  Cycles FarthestInvolvedLink(const LineInfo& li, LineAddr line, int socket) const;

  bool inclusive() const { return st_.spec.inclusive_llc; }
  bool moesi() const {
    return variant_ == ProtocolVariant::kPlatformDefault ? st_.spec.has_owned_state
                                                         : variant_ == ProtocolVariant::kMoesi;
  }

  ProtocolVariant variant_;
};

}  // namespace ssync

#endif  // SRC_CCSIM_MODEL_MULTISOCKET_H_
