// Shared types for the cache-coherence substrate.
#ifndef SRC_CCSIM_TYPES_H_
#define SRC_CCSIM_TYPES_H_

#include <cstdint>

#include "src/sim/engine.h"

namespace ssync {

// A cache line identifier: host address >> 6 (see src/util/cacheline.h).
using LineAddr = std::uint64_t;

// Memory node / socket / tile identifiers. Platform-dependent meaning:
// Opteron: die (8), Xeon: socket (8), Niagara: single node, Tilera: tile (36).
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;
inline constexpr CpuId kNoCpu = -1;

// MESI and friends. kOwned is MOESI (Opteron); kForward is MESIF (Xeon).
enum class LineState : std::uint8_t {
  kInvalid,
  kShared,
  kExclusive,
  kOwned,
  kModified,
  kForward,
};

const char* ToString(LineState s);

enum class AccessType : std::uint8_t {
  kLoad,
  kStore,
  kRfo,  // prefetchw: acquires ownership like a store, pipelines like a load
  kCas,
  kFai,
  kTas,
  kSwap,
};

inline constexpr int kNumAtomicOps = 4;  // kCas..kSwap

const char* ToString(AccessType t);

inline bool IsAtomic(AccessType t) { return t >= AccessType::kCas; }

// Index into per-op atomic cost arrays.
inline int AtomicIndex(AccessType t) {
  return static_cast<int>(t) - static_cast<int>(AccessType::kCas);
}

// Where an access was satisfied — for tracing, tests, and ccbench reporting.
enum class Source : std::uint8_t {
  kL1,
  kL2,
  kLlcLocal,        // own-socket LLC / own home slice
  kPeerLocal,       // another private cache on the same socket
  kPeerRemote,      // a cache on a remote socket
  kLlcRemote,       // remote LLC / remote home slice
  kMemLocal,        // DRAM on the local node
  kMemRemote,       // DRAM on a remote node
};

const char* ToString(Source s);

struct AccessResult {
  Cycles latency = 0;    // protocol cost of this access
  Cycles stall = 0;      // time spent waiting for the line's previous transaction
  Source source = Source::kL1;

  Cycles total() const { return latency + stall; }
};

}  // namespace ssync

#endif  // SRC_CCSIM_TYPES_H_
