#include "src/trace/replay.h"

#include <algorithm>
#include <vector>

#include "src/sim/engine.h"
#include "src/util/check.h"

namespace ssync::trace {

namespace {

inline LineAddr LineOfAddr(std::uint64_t addr) { return addr >> 6; }

// Mirrors SimMem::Touch: one coherence access per line of [addr, addr+bytes).
void TouchRange(Machine& m, std::uint64_t addr, std::uint64_t bytes, AccessType type) {
  if (bytes == 0) {
    return;
  }
  const LineAddr first = LineOfAddr(addr);
  const LineAddr last = LineOfAddr(addr + bytes - 1);
  for (LineAddr line = first; line <= last; ++line) {
    m.Access(line, type);
  }
}

// Executes one record against the machine, using the same entry points the
// corresponding SimMem operation uses (so a sim-captured trace replays in
// lock step). Returns the number of coherence-machine ops performed (pause
// and compute only advance the fiber's clock).
std::uint64_t ReplayOp(Machine& m, const TraceRecord& rec) {
  const LineAddr line = LineOfAddr(rec.addr);
  switch (rec.op) {
    case TraceOp::kLoad:
      m.Access(line, AccessType::kLoad);
      return 1;
    case TraceOp::kStore:
      m.Access(line, AccessType::kStore);
      return 1;
    case TraceOp::kCas:
      m.Access(line, AccessType::kCas);
      return 1;
    case TraceOp::kFai:
      m.Access(line, AccessType::kFai);
      return 1;
    case TraceOp::kTas:
      m.Access(line, AccessType::kTas);
      return 1;
    case TraceOp::kSwap:
      m.Access(line, AccessType::kSwap);
      return 1;
    case TraceOp::kLoadPoll:
      m.Poll(line, /*rfo=*/false);
      return 1;
    case TraceOp::kLoadPollRfo:
      m.Poll(line, /*rfo=*/true);
      return 1;
    case TraceOp::kLoadRfo:
    case TraceOp::kPrefetchw:
      m.Prefetchw(line);
      return 1;
    case TraceOp::kPrefetchAsync:
      m.PrefetchAsync(line, /*for_write=*/false);
      return 1;
    case TraceOp::kPrefetchwAsync:
      m.PrefetchAsync(line, /*for_write=*/true);
      return 1;
    case TraceOp::kFence:
      m.Fence();
      return 1;
    case TraceOp::kPause:
    case TraceOp::kCompute:
      Engine::Current()->Advance(rec.size);
      return 0;
    case TraceOp::kReadData: {
      const LineAddr last = rec.size == 0 ? line : LineOfAddr(rec.addr + rec.size - 1);
      TouchRange(m, rec.addr, rec.size, AccessType::kLoad);
      return rec.size == 0 ? 0 : last - line + 1;
    }
    case TraceOp::kWriteData: {
      const LineAddr last = rec.size == 0 ? line : LineOfAddr(rec.addr + rec.size - 1);
      TouchRange(m, rec.addr, rec.size, AccessType::kStore);
      return rec.size == 0 ? 0 : last - line + 1;
    }
    case TraceOp::kSetHome:
      SSYNC_CHECK(false);  // placements are applied before the run
      return 0;
  }
  return 0;
}

}  // namespace

TraceReplayRuntime::TraceReplayRuntime(const PlatformSpec& spec,
                                       const std::string& protocol)
    : machine_(spec, protocol) {}

ReplayStats TraceReplayRuntime::Replay(const Trace& trace) {
  const PlatformSpec& spec = machine_.spec();
  ReplayStats out;
  out.recorded_tids = trace.num_tids();
  const int threads = std::min(trace.num_tids(), spec.num_cpus);
  out.threads = threads;

  // Placements first, exactly as SimRuntime::PlaceData issues them pre-run
  // (the capture records one kSetHome per PlaceData call, carrying the full
  // byte range; the placing thread's identity folds like any other tid).
  for (const TraceRecord& rec : trace.placements) {
    if (rec.size == 0) {
      continue;
    }
    const int slot = threads > 0 ? rec.tid % threads : 0;
    const NodeId node = spec.MemNodeOf(spec.CpuForThread(slot));
    const LineAddr first = LineOfAddr(rec.addr);
    const LineAddr last = LineOfAddr(rec.addr + rec.size - 1);
    for (LineAddr line = first; line <= last; ++line) {
      machine_.SetHome(line, node);
    }
  }

  if (threads == 0) {
    last_duration_ = 0;
    return out;
  }

  // Fold recorded tids onto replay threads: slot s executes streams
  // s, s+threads, s+2*threads, ... in tid order.
  std::vector<std::vector<const std::vector<TraceRecord>*>> slots(threads);
  for (int tid = 0; tid < trace.num_tids(); ++tid) {
    slots[tid % threads].push_back(&trace.streams[tid]);
  }

  Engine engine(spec.num_cpus);
  std::vector<std::uint64_t> replayed(threads, 0);
  std::vector<std::uint64_t> mem_ops(threads, 0);
  for (int slot = 0; slot < threads; ++slot) {
    const CpuId cpu = spec.CpuForThread(slot);
    engine.Spawn(cpu, [this, &slots, &replayed, &mem_ops, slot] {
      for (const std::vector<TraceRecord>* stream : slots[slot]) {
        for (const TraceRecord& rec : *stream) {
          mem_ops[slot] += ReplayOp(machine_, rec);
          ++replayed[slot];
        }
      }
    });
  }

  machine_.ResetTimeDomain();
  engine.Run();
  last_duration_ = engine.end_time();

  out.duration = last_duration_;
  for (int slot = 0; slot < threads; ++slot) {
    out.replayed += replayed[slot];
    out.mem_ops += mem_ops[slot];
  }
  return out;
}

}  // namespace ssync::trace
