#include "src/trace/format.h"

#include <cstdio>
#include <cstring>

#include "src/util/check.h"

namespace ssync::trace {

const char* ToString(TraceOp op) {
  switch (op) {
    case TraceOp::kLoad: return "load";
    case TraceOp::kStore: return "store";
    case TraceOp::kCas: return "cas";
    case TraceOp::kFai: return "fai";
    case TraceOp::kTas: return "tas";
    case TraceOp::kSwap: return "swap";
    case TraceOp::kLoadPoll: return "load_poll";
    case TraceOp::kLoadPollRfo: return "load_poll_rfo";
    case TraceOp::kLoadRfo: return "load_rfo";
    case TraceOp::kPrefetchw: return "prefetchw";
    case TraceOp::kPrefetchAsync: return "prefetch_async";
    case TraceOp::kPrefetchwAsync: return "prefetchw_async";
    case TraceOp::kFence: return "fence";
    case TraceOp::kPause: return "pause";
    case TraceOp::kCompute: return "compute";
    case TraceOp::kReadData: return "read_data";
    case TraceOp::kWriteData: return "write_data";
    case TraceOp::kSetHome: return "set_home";
  }
  return "?";
}

void AppendVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool DecodeVarint(const std::uint8_t*& p, const std::uint8_t* end, std::uint64_t* out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (p < end) {
    const std::uint8_t byte = *p++;
    if (shift == 63 && byte > 1) {
      return false;  // would overflow 64 bits
    }
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
    if (shift > 63) {
      return false;
    }
  }
  return false;  // ran off the end mid-varint
}

std::uint64_t ZigZagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::int64_t ZigZagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// ---------------------------------------------------------------------------
// ChunkEncoder
// ---------------------------------------------------------------------------

void ChunkEncoder::Add(int tid, TraceOp op, std::uint64_t addr, std::uint64_t size) {
  SSYNC_DCHECK(tid >= 0 && tid < kMaxTraceTid);
  AppendVarint(bytes_, static_cast<std::uint64_t>(tid));
  bytes_.push_back(static_cast<std::uint8_t>(op));
  if (HasAddr(op)) {
    const std::int64_t delta =
        static_cast<std::int64_t>(addr) - static_cast<std::int64_t>(last_addr_);
    AppendVarint(bytes_, ZigZagEncode(delta));
    last_addr_ = addr;
  }
  if (HasSize(op)) {
    AppendVarint(bytes_, size);
  }
  ++records_;
}

namespace {

void AppendU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

bool ReadU32(const std::uint8_t*& p, const std::uint8_t* end, std::uint32_t* out) {
  if (end - p < 4) {
    return false;
  }
  *out = static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
  p += 4;
  return true;
}

}  // namespace

void ChunkEncoder::EncodeInto(std::vector<std::uint8_t>& out) {
  if (empty()) {
    return;
  }
  AppendU32(out, records_);
  AppendU32(out, static_cast<std::uint32_t>(bytes_.size()));
  out.insert(out.end(), bytes_.begin(), bytes_.end());
  bytes_.clear();
  last_addr_ = 0;
  records_ = 0;
}

// ---------------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------------

std::unique_ptr<TraceWriter> TraceWriter::OpenFile(const std::string& path,
                                                   std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    *error = "cannot open trace file '" + path + "' for writing";
    return nullptr;
  }
  std::unique_ptr<TraceWriter> w(new TraceWriter());
  w->file_ = f;
  if (std::fwrite(kTraceMagic, 1, sizeof(kTraceMagic), f) != sizeof(kTraceMagic)) {
    *error = "cannot write trace header to '" + path + "'";
    std::fclose(f);
    return nullptr;
  }
  return w;
}

std::unique_ptr<TraceWriter> TraceWriter::OpenBuffer() {
  std::unique_ptr<TraceWriter> w(new TraceWriter());
  w->buffer_backed_ = true;
  w->buffer_.resize(kTraceHeaderBytes);
  std::memcpy(w->buffer_.data(), kTraceMagic, kTraceHeaderBytes);
  return w;
}

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void TraceWriter::WriteChunk(ChunkEncoder& chunk) {
  if (chunk.empty()) {
    return;
  }
  records_ += chunk.records();
  if (buffer_backed_) {
    chunk.EncodeInto(buffer_);
    return;
  }
  std::vector<std::uint8_t> framed;
  chunk.EncodeInto(framed);
  if (file_ != nullptr &&
      std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size()) {
    failed_ = true;
  }
}

bool TraceWriter::Close(std::string* error) {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0) {
      failed_ = true;
    }
    file_ = nullptr;
  }
  if (failed_ && error != nullptr) {
    *error = "trace write failed (disk full?)";
  }
  return !failed_;
}

std::vector<std::uint8_t> TraceWriter::TakeBuffer() {
  SSYNC_CHECK(buffer_backed_);
  return std::move(buffer_);
}

// ---------------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------------

namespace {

std::string At(std::size_t offset, const std::string& what) {
  return "trace offset " + std::to_string(offset) + ": " + what;
}

}  // namespace

bool TraceReader::Parse(const std::uint8_t* data, std::size_t len, std::string* error) {
  trace_ = Trace{};
  if (len < kTraceHeaderBytes ||
      std::memcmp(data, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    *error = "not a ssync trace (bad magic; expected \"SSYNCTR1\")";
    return false;
  }
  const std::uint8_t* p = data + kTraceHeaderBytes;
  const std::uint8_t* const end = data + len;
  while (p < end) {
    const std::size_t chunk_off = static_cast<std::size_t>(p - data);
    std::uint32_t records = 0;
    std::uint32_t nbytes = 0;
    if (!ReadU32(p, end, &records) || !ReadU32(p, end, &nbytes)) {
      *error = At(chunk_off, "truncated chunk header");
      return false;
    }
    if (static_cast<std::size_t>(end - p) < nbytes) {
      *error = At(chunk_off, "truncated chunk payload (" + std::to_string(nbytes) +
                                 " bytes declared, " + std::to_string(end - p) +
                                 " available)");
      return false;
    }
    if (records == 0 && nbytes != 0) {
      *error = At(chunk_off, "chunk with 0 records but a non-empty payload");
      return false;
    }
    const std::uint8_t* const chunk_end = p + nbytes;
    std::uint64_t last_addr = 0;
    for (std::uint32_t i = 0; i < records; ++i) {
      const std::size_t rec_off = static_cast<std::size_t>(p - data);
      std::uint64_t tid = 0;
      if (!DecodeVarint(p, chunk_end, &tid)) {
        *error = At(rec_off, "bad tid varint");
        return false;
      }
      if (tid >= static_cast<std::uint64_t>(kMaxTraceTid)) {
        *error = At(rec_off, "tid " + std::to_string(tid) + " out of range");
        return false;
      }
      if (p >= chunk_end) {
        *error = At(rec_off, "record truncated before op byte");
        return false;
      }
      const std::uint8_t op_byte = *p++;
      if (op_byte >= kNumTraceOps) {
        *error = At(rec_off, "unknown op byte " + std::to_string(op_byte));
        return false;
      }
      TraceRecord rec;
      rec.tid = static_cast<int>(tid);
      rec.op = static_cast<TraceOp>(op_byte);
      if (HasAddr(rec.op)) {
        std::uint64_t zz = 0;
        if (!DecodeVarint(p, chunk_end, &zz)) {
          *error = At(rec_off, "bad address varint");
          return false;
        }
        last_addr = static_cast<std::uint64_t>(static_cast<std::int64_t>(last_addr) +
                                               ZigZagDecode(zz));
        rec.addr = last_addr;
      }
      if (HasSize(rec.op)) {
        if (!DecodeVarint(p, chunk_end, &rec.size)) {
          *error = At(rec_off, "bad size varint");
          return false;
        }
      }
      if (rec.op == TraceOp::kSetHome) {
        trace_.placements.push_back(rec);
      } else {
        if (rec.tid >= trace_.num_tids()) {
          trace_.streams.resize(tid + 1);
        }
        trace_.streams[rec.tid].push_back(rec);
      }
      ++trace_.records;
    }
    if (p != chunk_end) {
      *error = At(chunk_off, "chunk record count and byte length disagree (" +
                                 std::to_string(chunk_end - p) + " bytes left over)");
      return false;
    }
  }
  return true;
}

bool TraceReader::ParseFile(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open trace file '" + path + "'";
    return false;
  }
  std::vector<std::uint8_t> data;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    *error = "error reading trace file '" + path + "'";
    return false;
  }
  if (!Parse(data.data(), data.size(), error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

}  // namespace ssync::trace
