// Deterministic synthetic traces for the trace_replay experiment's baseline
// mode (no --trace-in). Real captures embed host heap addresses, so their
// replay stats vary run to run; the synthetic trace uses fixed addresses and
// a seeded Rng, making every replay byte-stable across machines — which is
// what lets CI gate the trace_replay metrics on exact equality.
#ifndef SRC_TRACE_SYNTHETIC_H_
#define SRC_TRACE_SYNTHETIC_H_

#include <cstdint>

#include "src/trace/format.h"

namespace ssync::trace {

// A lock-protected-counter-style workload over `tids` threads: each round a
// thread CASes a shared lock line, reads/writes shared state, bumps a shared
// counter, works on private lines, and fences — a mix that exercises every
// transition the MESI/MOESI variants disagree on (dirty-line loads, upgrades,
// invalidation fan-out).
Trace MakeSyntheticTrace(int tids, int rounds, std::uint64_t seed);

}  // namespace ssync::trace

#endif  // SRC_TRACE_SYNTHETIC_H_
