#include "src/trace/recorder.h"

#include <memory>
#include <mutex>

#include "src/util/check.h"

namespace ssync::trace {

namespace internal {
std::atomic<bool> g_capture_on{false};
}  // namespace internal

namespace {

// Flush threshold for a thread's chunk buffer. Large enough that the sink
// mutex is touched rarely, small enough that short captures still produce
// multi-chunk files (exercising the chunk-boundary delta reset).
constexpr std::size_t kChunkFlushBytes = std::size_t{48} * 1024;

// One per OS thread that recorded anything. The buffer's mutex is only ever
// contended by StopCapture's final flush; Record's acquisition is uncontended.
struct ThreadBuf {
  std::mutex mu;
  ChunkEncoder chunk;
};

struct Sink {
  std::mutex mu;           // serializes WriteChunk + open/close transitions
  std::unique_ptr<TraceWriter> writer;

  std::mutex registry_mu;  // guards the thread-buffer registry
  std::vector<ThreadBuf*> threads;
};

// Leaked singletons: thread_local destructors of exiting threads may run
// after static destructors on some runtimes, so the sink must never die.
Sink& GlobalSink() {
  static Sink* sink = new Sink();
  return *sink;
}

// Moves the thread's pending chunk into the sink. Never holds the buffer
// mutex while taking the sink mutex (StopCapture takes them in the same
// buffer-then-sink order, so there is no inversion).
void FlushThreadBuf(ThreadBuf& buf) {
  ChunkEncoder pending;
  {
    std::lock_guard<std::mutex> lock(buf.mu);
    if (buf.chunk.empty()) {
      return;
    }
    pending = std::move(buf.chunk);
    buf.chunk = ChunkEncoder{};
  }
  Sink& sink = GlobalSink();
  std::lock_guard<std::mutex> lock(sink.mu);
  if (sink.writer != nullptr) {
    sink.writer->WriteChunk(pending);
  }
}

// Owner object whose destructor flushes and unregisters the thread's buffer
// when the thread exits mid-capture.
struct ThreadBufOwner {
  ThreadBuf* buf = nullptr;

  ThreadBuf* Get() {
    if (buf == nullptr) {
      buf = new ThreadBuf();
      Sink& sink = GlobalSink();
      std::lock_guard<std::mutex> lock(sink.registry_mu);
      sink.threads.push_back(buf);
    }
    return buf;
  }

  ~ThreadBufOwner() {
    if (buf == nullptr) {
      return;
    }
    FlushThreadBuf(*buf);
    Sink& sink = GlobalSink();
    std::lock_guard<std::mutex> lock(sink.registry_mu);
    for (auto it = sink.threads.begin(); it != sink.threads.end(); ++it) {
      if (*it == buf) {
        sink.threads.erase(it);
        break;
      }
    }
    delete buf;
    buf = nullptr;
  }
};

thread_local ThreadBufOwner t_buf_owner;

bool StartCapture(std::unique_ptr<TraceWriter> writer) {
  Sink& sink = GlobalSink();
  std::lock_guard<std::mutex> lock(sink.mu);
  if (sink.writer != nullptr) {
    return false;
  }
  sink.writer = std::move(writer);
  internal::g_capture_on.store(true, std::memory_order_release);
  return true;
}

}  // namespace

namespace internal {

void Record(int tid, TraceOp op, const void* addr, std::uint64_t size) {
  if (tid < 0 || tid >= kMaxTraceTid) {
    return;  // not a runtime worker: no replay identity
  }
  ThreadBuf* buf = t_buf_owner.Get();
  bool flush = false;
  {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->chunk.Add(tid, op, reinterpret_cast<std::uintptr_t>(addr), size);
    flush = buf->chunk.bytes() >= kChunkFlushBytes;
  }
  if (flush) {
    FlushThreadBuf(*buf);
  }
}

}  // namespace internal

bool StartCaptureFile(const std::string& path, std::string* error) {
  std::unique_ptr<TraceWriter> writer = TraceWriter::OpenFile(path, error);
  if (writer == nullptr) {
    return false;
  }
  if (!StartCapture(std::move(writer))) {
    *error = "a trace capture is already active";
    return false;
  }
  return true;
}

bool StartCaptureBuffer() { return StartCapture(TraceWriter::OpenBuffer()); }

std::uint64_t StopCapture(std::vector<std::uint8_t>* out, std::string* error) {
  Sink& sink = GlobalSink();
  // Stop new records first; in-flight Record calls finish under their buffer
  // mutexes, which the flush below serializes with.
  internal::g_capture_on.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sink.mu);
    if (sink.writer == nullptr) {
      return 0;
    }
  }
  {
    std::lock_guard<std::mutex> registry_lock(sink.registry_mu);
    for (ThreadBuf* buf : sink.threads) {
      FlushThreadBuf(*buf);
    }
  }
  std::unique_ptr<TraceWriter> writer;
  {
    std::lock_guard<std::mutex> lock(sink.mu);
    writer = std::move(sink.writer);
  }
  SSYNC_CHECK(writer != nullptr);  // only one StopCapture can take it
  const std::uint64_t records = writer->records();
  std::string close_error;
  if (!writer->Close(&close_error) && error != nullptr) {
    *error = close_error;
  }
  if (out != nullptr && writer->buffer_backed()) {
    *out = writer->TakeBuffer();
  }
  return records;
}

bool CaptureActive() {
  Sink& sink = GlobalSink();
  std::lock_guard<std::mutex> lock(sink.mu);
  return sink.writer != nullptr;
}

}  // namespace ssync::trace
