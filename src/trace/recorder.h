// Memory-op trace capture: the recorder behind `ssyncbench --trace-out` and
// `ssyncd --trace-out`.
//
// The Mem backends (src/core/mem_native.h, src/core/mem_sim.h) call
// MaybeRecord-style hooks on every charged operation. The hooks compile to a
// single relaxed flag load plus a never-taken branch when capture is off —
// zero measurable overhead on the native hot paths — and can be compiled out
// entirely with -DSSYNC_TRACE_CAPTURE=0.
//
// When capture is on, each OS thread encodes into its own chunk buffer (one
// uncontended mutex acquisition per op); full chunks are appended to the
// shared TraceWriter under a separate sink mutex. StopCapture() flips the
// flag off, flushes every live thread buffer, and returns the record count.
//
// Not recorded (and therefore not replayable): ParkSelf/UnparkThread (the
// MUTEX lock's futex path — kernel scheduling, not memory ops) and the
// uncharged seqlock raw-field helpers (whose coherence traffic the optimistic
// read path charges explicitly via ReadData/WriteData).
#ifndef SRC_TRACE_RECORDER_H_
#define SRC_TRACE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/format.h"

// Compile-time gate: 0 removes the capture hooks from the Mem backends
// entirely (the runtime flag below is then never consulted).
#ifndef SSYNC_TRACE_CAPTURE
#define SSYNC_TRACE_CAPTURE 1
#endif

namespace ssync::trace {

namespace internal {
extern std::atomic<bool> g_capture_on;
// The out-of-line slow path: encodes one record into the calling thread's
// chunk buffer. Records with tid < 0 (a thread outside any runtime's worker
// set) are dropped — they have no replay identity.
void Record(int tid, TraceOp op, const void* addr, std::uint64_t size);
}  // namespace internal

// True when a capture is in progress. The Mem hooks check this inline before
// paying for anything else (including the thread-id TLS read).
inline bool CaptureEnabled() {
#if SSYNC_TRACE_CAPTURE
  return internal::g_capture_on.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

// Starts capturing to `path`. False (with *error) if the file cannot be
// opened or a capture is already active.
bool StartCaptureFile(const std::string& path, std::string* error);

// Starts capturing into memory (tests); retrieve the bytes via StopCapture.
// False if a capture is already active.
bool StartCaptureBuffer();

// Stops the capture: disables the hooks, flushes every thread's pending
// chunk, closes the output, and returns the total record count. For
// buffer-backed captures the encoded bytes are moved into *out (ignored for
// file captures). Returns 0 if no capture was active. With `error` non-null,
// a file-write failure is reported there (records still returned).
std::uint64_t StopCapture(std::vector<std::uint8_t>* out = nullptr,
                          std::string* error = nullptr);

bool CaptureActive();

}  // namespace ssync::trace

#endif  // SRC_TRACE_RECORDER_H_
