// The memory-op trace format: compact binary records of every charged Mem
// operation a workload performed, written by the capture recorder
// (src/trace/recorder.h) and consumed by the replay runtime
// (src/trace/replay.h).
//
// File layout:
//
//   [8-byte magic "SSYNCTR1"]
//   chunk*   where chunk = [u32 record count][u32 payload bytes][payload]
//
// A chunk's payload is a sequence of records, each
//
//   varint(tid)  op byte  [zigzag-varint(addr delta)]  [varint(size)]
//
// with the address delta taken against the previous address-carrying record
// *in the same chunk* (the delta state resets at every chunk boundary, so
// per-thread chunks flushed in any interleaving still decode). Ops without an
// address (fence/pause/compute) or without a size (fence) simply omit the
// field. Addresses are raw host virtual addresses: the simulator derives the
// cache line as addr >> 6, so deltas within a data structure stay small and
// false sharing replays exactly as captured.
//
// All integers are little-endian; varints are LEB128 (7 bits per byte, high
// bit = continuation). The format is append-only versioned via the magic.
#ifndef SRC_TRACE_FORMAT_H_
#define SRC_TRACE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace ssync::trace {

// Operation classes, one per charged Mem-concept entry point. Values are the
// on-disk encoding — append only, never renumber.
enum class TraceOp : std::uint8_t {
  kLoad = 0,
  kStore = 1,
  kCas = 2,
  kFai = 3,
  kTas = 4,
  kSwap = 5,
  kLoadPoll = 6,     // polling load (busy-wait scan)
  kLoadPollRfo = 7,  // ownership-maintaining poll
  kLoadRfo = 8,      // prefetchw + load as one transaction
  kPrefetchw = 9,
  kPrefetchAsync = 10,
  kPrefetchwAsync = 11,
  kFence = 12,      // no addr, no size
  kPause = 13,      // no addr; size = cycles
  kCompute = 14,    // no addr; size = cycles
  kReadData = 15,   // addr..addr+size payload read
  kWriteData = 16,  // addr..addr+size payload write
  kSetHome = 17,    // PlaceData: home addr..addr+size with the record's tid
};

inline constexpr int kNumTraceOps = 18;

const char* ToString(TraceOp op);

inline bool HasAddr(TraceOp op) {
  return op != TraceOp::kFence && op != TraceOp::kPause && op != TraceOp::kCompute;
}
inline bool HasSize(TraceOp op) { return op != TraceOp::kFence; }

struct TraceRecord {
  int tid = 0;
  TraceOp op = TraceOp::kLoad;
  std::uint64_t addr = 0;  // raw host address (line = addr >> 6); 0 if !HasAddr
  std::uint64_t size = 0;  // bytes, or cycles for kPause/kCompute; 0 if !HasSize

  bool operator==(const TraceRecord& o) const {
    return tid == o.tid && op == o.op && addr == o.addr && size == o.size;
  }
  bool operator!=(const TraceRecord& o) const { return !(*this == o); }
};

inline constexpr char kTraceMagic[8] = {'S', 'S', 'Y', 'N', 'C', 'T', 'R', '1'};
inline constexpr std::size_t kTraceHeaderBytes = sizeof(kTraceMagic);

// Sanity bound on encoded tids: far above kMaxNativeThreads (256) and every
// simulated cpu count, low enough that a corrupt varint cannot balloon the
// per-tid stream table.
inline constexpr int kMaxTraceTid = 1 << 20;

// --- varint primitives (exposed for the codec tests) ---
void AppendVarint(std::vector<std::uint8_t>& out, std::uint64_t v);
bool DecodeVarint(const std::uint8_t*& p, const std::uint8_t* end, std::uint64_t* out);
std::uint64_t ZigZagEncode(std::int64_t v);
std::int64_t ZigZagDecode(std::uint64_t v);

// Encodes records into one chunk payload. The address-delta state lives here,
// so one encoder == one chunk: after EncodeInto/Reset the state starts fresh.
class ChunkEncoder {
 public:
  void Add(int tid, TraceOp op, std::uint64_t addr, std::uint64_t size);

  std::uint32_t records() const { return records_; }
  std::size_t bytes() const { return bytes_.size(); }
  bool empty() const { return records_ == 0; }

  // Appends the framed chunk ([u32 records][u32 bytes][payload]) to `out`
  // and resets this encoder for the next chunk. No-op when empty.
  void EncodeInto(std::vector<std::uint8_t>& out);

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t last_addr_ = 0;
  std::uint32_t records_ = 0;
};

// Writes a trace to a file or an in-memory buffer: the header on open, then
// framed chunks. Not thread-safe — the recorder serializes writers.
class TraceWriter {
 public:
  // nullptr (with *error set) when the file cannot be opened.
  static std::unique_ptr<TraceWriter> OpenFile(const std::string& path,
                                               std::string* error);
  static std::unique_ptr<TraceWriter> OpenBuffer();
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // Flushes `chunk` into the output and resets it.
  void WriteChunk(ChunkEncoder& chunk);

  std::uint64_t records() const { return records_; }

  // Flushes and closes the output; false (with *error) on a write failure.
  // For buffer-backed writers always true. Idempotent.
  bool Close(std::string* error);

  // Buffer-backed writers: moves the encoded bytes out.
  std::vector<std::uint8_t> TakeBuffer();
  bool buffer_backed() const { return buffer_backed_; }

 private:
  TraceWriter() = default;

  std::FILE* file_ = nullptr;
  std::vector<std::uint8_t> buffer_;
  bool buffer_backed_ = false;
  bool failed_ = false;
  std::uint64_t records_ = 0;
};

// A fully parsed trace, indexed for replay: the per-tid op streams (file
// order within each tid) and the placement directives, separated out because
// replay applies them before spawning fibers.
struct Trace {
  std::vector<std::vector<TraceRecord>> streams;  // index = recorded tid
  std::vector<TraceRecord> placements;            // kSetHome records, file order
  std::uint64_t records = 0;                      // total, including placements

  // Recorded tid-space size (some streams may be empty: a native thread that
  // performed no charged ops between start and stop still occupies its slot).
  int num_tids() const { return static_cast<int>(streams.size()); }
  std::uint64_t ops() const { return records - placements.size(); }
};

// Parses and validates an encoded trace. Rejects (returning false with a
// position-stamped *error): bad magic, truncated header/chunk, unknown op
// bytes, tids outside [0, kMaxTraceTid), chunk payloads whose record count
// and byte length disagree, and trailing garbage.
class TraceReader {
 public:
  bool Parse(const std::uint8_t* data, std::size_t len, std::string* error);
  bool Parse(const std::vector<std::uint8_t>& data, std::string* error) {
    return Parse(data.data(), data.size(), error);
  }
  bool ParseFile(const std::string& path, std::string* error);

  const Trace& trace() const { return trace_; }
  Trace Take() { return std::move(trace_); }

 private:
  Trace trace_;
};

}  // namespace ssync::trace

#endif  // SRC_TRACE_FORMAT_H_
