#include "src/trace/synthetic.h"

#include "src/util/check.h"
#include "src/util/rng.h"

namespace ssync::trace {

namespace {

// Fixed virtual layout (line-aligned; never dereferenced — replay only uses
// addr >> 6). Shared region first, then per-tid private regions.
constexpr std::uint64_t kBase = 0x10000000;
constexpr std::uint64_t kLine = 64;
constexpr std::uint64_t kLockAddr = kBase;                 // the "lock" line
constexpr std::uint64_t kCounterAddr = kBase + kLine;      // shared counter
constexpr std::uint64_t kSharedAddr = kBase + 2 * kLine;   // shared data array
constexpr int kSharedLines = 8;
constexpr std::uint64_t kPrivateAddr = kBase + (2 + kSharedLines) * kLine;
constexpr int kPrivateLines = 4;

}  // namespace

Trace MakeSyntheticTrace(int tids, int rounds, std::uint64_t seed) {
  SSYNC_CHECK_GT(tids, 0);
  SSYNC_CHECK_GT(rounds, 0);
  Trace trace;
  trace.streams.resize(tids);

  // Home all shared state at thread 0's node, as PlaceData would.
  TraceRecord place;
  place.tid = 0;
  place.op = TraceOp::kSetHome;
  place.addr = kBase;
  place.size = (2 + kSharedLines) * kLine;
  trace.placements.push_back(place);
  ++trace.records;

  for (int tid = 0; tid < tids; ++tid) {
    Rng rng(seed + static_cast<std::uint64_t>(tid) * 0x9e3779b97f4a7c15ULL);
    std::vector<TraceRecord>& s = trace.streams[tid];
    const std::uint64_t priv =
        kPrivateAddr + static_cast<std::uint64_t>(tid) * kPrivateLines * kLine;
    auto emit = [&](TraceOp op, std::uint64_t addr, std::uint64_t size) {
      s.push_back(TraceRecord{tid, op, addr, size});
      ++trace.records;
    };
    for (int r = 0; r < rounds; ++r) {
      // Acquire-style CAS on the lock line, then the critical section's
      // load+store of a shared line, then release-style store.
      emit(TraceOp::kCas, kLockAddr, 8);
      const std::uint64_t shared = kSharedAddr + rng.NextBelow(kSharedLines) * kLine;
      emit(TraceOp::kLoad, shared, 8);
      emit(TraceOp::kStore, shared, 8);
      emit(TraceOp::kStore, kLockAddr, 8);
      // Uncontended private work: loads that stay Exclusive under MESI and
      // MOESI alike (the control group for the transition counters).
      for (int i = 0; i < kPrivateLines; ++i) {
        emit(TraceOp::kLoad, priv + static_cast<std::uint64_t>(i) * kLine, 8);
      }
      emit(TraceOp::kStore, priv + rng.NextBelow(kPrivateLines) * kLine, 8);
      // Shared counter + fence, plus a dirty-line read of another thread's
      // hot line — the op MESI and MOESI price differently.
      emit(TraceOp::kFai, kCounterAddr, 8);
      emit(TraceOp::kFence, 0, 0);
      emit(TraceOp::kLoad, kSharedAddr + rng.NextBelow(kSharedLines) * kLine, 8);
      if (rng.NextBelow(4) == 0) {
        emit(TraceOp::kPause, 0, 60);
      }
    }
  }
  return trace;
}

}  // namespace ssync::trace
