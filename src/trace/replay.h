// TraceReplayRuntime: re-executes a captured memory-op trace on a simulated
// Machine, under any PlatformSpec and any registered coherence protocol.
//
// Replay satisfies the slice of the Runtime concept that the Machine consumes:
// it owns the Machine, spawns one engine fiber per replay thread (placed by
// the spec's Section-5.4 policy, exactly as SimRuntime would), applies the
// recorded placement directives, and drives each fiber through its tid's
// recorded op stream using the same Machine entry points SimMem uses. A trace
// captured from a simulated run on the same spec therefore reproduces the
// original MachineStats exactly (the lock-step property, asserted in
// tests/trace_replay_test.cc); a trace captured natively on a small container
// can be replayed onto a modeled 8-socket Opteron or a Niagara.
//
// Tid mapping: recorded tid t runs as replay thread (t % threads) where
// threads = min(recorded tids, spec.num_cpus). Folded streams concatenate in
// tid order, so an N-thread capture replays losslessly on any smaller
// machine.
#ifndef SRC_TRACE_REPLAY_H_
#define SRC_TRACE_REPLAY_H_

#include <cstdint>
#include <string>

#include "src/ccsim/machine.h"
#include "src/trace/format.h"

namespace ssync::trace {

struct ReplayStats {
  std::uint64_t replayed = 0;  // trace ops executed (placements excluded)
  std::uint64_t mem_ops = 0;   // ops that touched the coherence machine
  Cycles duration = 0;         // virtual end time of the replay
  int threads = 0;             // replay threads after tid folding
  int recorded_tids = 0;       // tid-space size of the source trace
};

class TraceReplayRuntime {
 public:
  explicit TraceReplayRuntime(const PlatformSpec& spec,
                              const std::string& protocol = kDefaultProtocolName);

  const PlatformSpec& spec() const { return machine_.spec(); }
  Machine& machine() { return machine_; }
  const std::string& protocol() const { return machine_.protocol(); }

  // Replays the whole trace; cache state persists across calls (as on a real
  // machine), the time domain resets per call (as SimRuntime resets per run).
  ReplayStats Replay(const Trace& trace);

  Cycles last_duration() const { return last_duration_; }

 private:
  Machine machine_;
  Cycles last_duration_ = 0;
};

}  // namespace ssync::trace

#endif  // SRC_TRACE_REPLAY_H_
