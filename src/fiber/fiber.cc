#include "src/fiber/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>

#include "src/util/check.h"

#if !defined(__x86_64__)
#error "This build targets x86-64; port fiber_switch to your architecture."
#endif

// Under AddressSanitizer every stack switch is announced so the tool carries
// its shadow/fake-stack state across fibers (otherwise the sim suites would
// report wild stack-use-after-return artifacts under the ASan CI job).
#include "src/util/sanitizers.h"

#if defined(SSYNC_ASAN_ENABLED)
#include <sanitizer/common_interface_defs.h>
#endif

extern "C" {
void ssync_fiber_switch(void** save_sp, void* load_sp);
void ssync_fiber_entry_shim();
}

namespace ssync {
namespace {

thread_local Fiber* g_current_fiber = nullptr;

std::size_t PageSize() {
  static const std::size_t size = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return size;
}

std::size_t RoundUpToPage(std::size_t n) {
  const std::size_t page = PageSize();
  return (n + page - 1) / page * page;
}

}  // namespace

Fiber* Fiber::Current() { return g_current_fiber; }

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes) : fn_(std::move(fn)) {
  const std::size_t usable = RoundUpToPage(stack_bytes);
  map_bytes_ = usable + PageSize();  // one guard page below the stack
  void* base = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  SSYNC_CHECK(base != MAP_FAILED);
  SSYNC_CHECK_EQ(mprotect(base, PageSize(), PROT_NONE), 0);
  stack_base_ = base;

  // Seed the initial stack frame so the first ssync_fiber_switch pops six
  // register slots and `ret`s into the entry shim. Stack top is 16-aligned;
  // see fiber_switch_x86_64.S for the alignment math.
  auto top = reinterpret_cast<std::uintptr_t>(base) + map_bytes_;
  top &= ~static_cast<std::uintptr_t>(15);
  auto* slots = reinterpret_cast<void**>(top);
  slots[-1] = nullptr;                                      // unwinder stopper
  slots[-2] = reinterpret_cast<void*>(&ssync_fiber_entry_shim);  // ret target
  slots[-3] = nullptr;                                      // rbp
  slots[-4] = reinterpret_cast<void*>(&Fiber::Entry);       // rbx -> C++ entry
  slots[-5] = this;                                         // r12 -> Fiber*
  slots[-6] = nullptr;                                      // r13
  slots[-7] = nullptr;                                      // r14
  slots[-8] = nullptr;                                      // r15
  sp_ = &slots[-8];
}

Fiber::~Fiber() {
  SSYNC_CHECK(!running_);
  if (stack_base_ != nullptr) {
    munmap(stack_base_, map_bytes_);
  }
}

void Fiber::Entry(Fiber* self) {
#if defined(SSYNC_ASAN_ENABLED)
  // First arrival on this stack: no fake stack to restore; learn the
  // resumer's stack bounds for the switch back.
  __sanitizer_finish_switch_fiber(nullptr, &self->asan_caller_bottom_,
                                  &self->asan_caller_size_);
#endif
  self->fn_();
  self->finished_ = true;
  // Return to the resumer for good. Resuming a finished fiber is a bug.
  self->Yield();
  SSYNC_CHECK(false);  // unreachable
}

void Fiber::Resume() {
  SSYNC_CHECK(!running_);
  SSYNC_CHECK(!finished_);
  Fiber* prev = g_current_fiber;
  g_current_fiber = this;
  running_ = true;
#if defined(SSYNC_ASAN_ENABLED)
  // Announce the switch onto the fiber's stack (usable region above the
  // guard page); `fake` parks this frame's fake-stack handle until the fiber
  // yields back here.
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(
      &fake, static_cast<const char*>(stack_base_) + PageSize(),
      map_bytes_ - PageSize());
#endif
  ssync_fiber_switch(&caller_sp_, sp_);
#if defined(SSYNC_ASAN_ENABLED)
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
  running_ = false;
  g_current_fiber = prev;
}

void Fiber::Yield() {
  SSYNC_CHECK(g_current_fiber == this);
#if defined(SSYNC_ASAN_ENABLED)
  // A finished fiber never runs again: passing null frees its fake stack.
  __sanitizer_start_switch_fiber(finished_ ? nullptr : &asan_fake_stack_,
                                 asan_caller_bottom_, asan_caller_size_);
#endif
  ssync_fiber_switch(&sp_, caller_sp_);
#if defined(SSYNC_ASAN_ENABLED)
  // Resumed again: restore this stack's fake-stack state and refresh the
  // (possibly different) resumer's bounds.
  __sanitizer_finish_switch_fiber(asan_fake_stack_, &asan_caller_bottom_,
                                  &asan_caller_size_);
#endif
}

}  // namespace ssync
