// Cooperative user-level fibers.
//
// The discrete-event engine (src/sim) runs every simulated hardware thread as a
// fiber on a single OS thread, switching in virtual-time order. Switches cost a
// few nanoseconds (hand-written assembly on x86-64; ucontext elsewhere), which
// is what makes cycle-level simulation of 80-core experiments practical.
//
// Fibers are strictly two-party: Resume() enters the fiber, Yield() returns to
// whoever resumed it. There is no scheduler here; that lives in sim::Engine.
#ifndef SRC_FIBER_FIBER_H_
#define SRC_FIBER_FIBER_H_

#include <cstddef>
#include <functional>

namespace ssync {

class Fiber {
 public:
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  // The function runs on the fiber's own guard-paged stack on first Resume().
  explicit Fiber(std::function<void()> fn, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Runs the fiber until it calls Yield() or its function returns.
  // Must not be called from inside the fiber itself, nor after finished().
  void Resume();

  // Returns control to the caller of Resume(). Must be called on the current
  // fiber only.
  void Yield();

  bool finished() const { return finished_; }

  // The fiber currently executing on this OS thread, or nullptr when on the
  // thread's native stack.
  static Fiber* Current();

 private:
  static void Entry(Fiber* self);

  std::function<void()> fn_;
  void* stack_base_ = nullptr;   // mmap base (includes guard page)
  std::size_t map_bytes_ = 0;
  void* sp_ = nullptr;           // fiber's saved stack pointer
  void* caller_sp_ = nullptr;    // resumer's saved stack pointer
  bool running_ = false;
  bool finished_ = false;

  // AddressSanitizer fiber bookkeeping (unused in regular builds): ASan must
  // be told about every stack switch (__sanitizer_start/finish_switch_fiber)
  // or its shadow state misattributes frames across fibers. The fiber's own
  // fake-stack handle, and the resumer's stack bounds learned on arrival
  // (needed to announce the switch back in Yield()).
  void* asan_fake_stack_ = nullptr;
  const void* asan_caller_bottom_ = nullptr;
  std::size_t asan_caller_size_ = 0;
};

}  // namespace ssync

#endif  // SRC_FIBER_FIBER_H_
