#include "src/alloc/slab.h"

#include <sys/mman.h>
#include <unistd.h>

#include <new>

namespace ssync {
namespace {

// Thread → arena binding. Bindings carry the allocator pointer AND a
// generation so a stale binding can never alias a newer allocator that
// happens to be constructed at the same address (engines are torn down and
// rebuilt on every server Start).
struct TlsBinding {
  const void* owner = nullptr;
  std::uint64_t generation = 0;
  int arena = 0;
};
thread_local TlsBinding tls_binding;
std::atomic<std::uint64_t> next_generation{1};

std::size_t RoundUp(std::size_t value, std::size_t multiple) {
  return (value + multiple - 1) / multiple * multiple;
}

}  // namespace

SlabAllocator::SlabAllocator(const Config& config) : config_(config) {
  if (config_.arenas < 1) config_.arenas = 1;
  if (config_.block_bytes < sizeof(FreeNode)) config_.block_bytes = sizeof(FreeNode);
  if (config_.block_align < alignof(FreeNode)) config_.block_align = alignof(FreeNode);
  config_.block_bytes = RoundUp(config_.block_bytes, config_.block_align);

  const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  config_.slab_bytes = RoundUp(config_.slab_bytes, page);
  // Blocks never straddle slabs; any sub-block tail of a slab is unused.
  blocks_per_slab_ = config_.slab_bytes / config_.block_bytes;
  config_.reserve_bytes = RoundUp(config_.reserve_bytes, config_.slab_bytes);

  generation_ = next_generation.fetch_add(1, std::memory_order_relaxed);
  arenas_ = std::make_unique<Arena[]>(static_cast<std::size_t>(config_.arenas));

  // MAP_NORESERVE + PROT_NONE: pure address-space reservation, no commit
  // charge. Slabs become usable (and accountable) only via CommitSlab. If
  // the reservation fails the allocator degrades to all-fallback; callers
  // see slabs=0 in stats rather than a crash.
  void* base = mmap(nullptr, config_.reserve_bytes, PROT_NONE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (base != MAP_FAILED) {
    base_ = static_cast<std::uint8_t*>(base);
    reserved_bytes_ = config_.reserve_bytes;
    slab_owner_.assign(reserved_bytes_ / config_.slab_bytes, -1);
  }
}

SlabAllocator::~SlabAllocator() {
  // Slab blocks — including anything still parked on remote-free queues —
  // vanish wholesale with the mapping; items are destroyed by their store
  // before reaching Free, so blocks hold no live objects here.
  if (base_ != nullptr) {
    munmap(base_, reserved_bytes_);
  }
}

void SlabAllocator::RegisterThread(int arena) {
  if (arena < 0 || arena >= config_.arenas) {
    arena = 0;
  }
  tls_binding = TlsBinding{this, generation_, arena};
}

void* SlabAllocator::Alloc() {
  if (tls_binding.owner != this || tls_binding.generation != generation_) {
    return FallbackAlloc();
  }
  Arena& arena = arenas_[tls_binding.arena];
  // Owner fast path: zero atomic RMWs, no shared cache lines. The counter
  // bump is a single-writer relaxed store (a plain MOV on x86).
  if (FreeNode* node = arena.free_list; node != nullptr) {
    arena.free_list = node->next;
    arena.allocs.store(arena.allocs.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    return node;
  }
  if (arena.bump != arena.bump_end) {
    std::uint8_t* block = arena.bump;
    arena.bump += config_.block_bytes;
    arena.allocs.store(arena.allocs.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    return block;
  }
  return AllocSlow(arena, tls_binding.arena);
}

void* SlabAllocator::AllocSlow(Arena& arena, int arena_index) {
  // Local list dry: first reclaim everything remote threads returned. One
  // exchange takes the whole stack; acquire pairs with the release CAS in
  // Free so the nodes' `next` chains are visible.
  if (FreeNode* head = arena.remote_head.exchange(nullptr, std::memory_order_acquire);
      head != nullptr) {
    arena.free_list = head->next;
    arena.allocs.store(arena.allocs.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    return head;
  }
  if (void* block = CommitSlab(arena, arena_index); block != nullptr) {
    arena.allocs.store(arena.allocs.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    return block;
  }
  // Reservation exhausted (or mmap failed at construction): degrade to the
  // global allocator rather than failing the store's Set.
  return FallbackAlloc();
}

void* SlabAllocator::CommitSlab(Arena& arena, int arena_index) {
  std::size_t slab_index;
  {
    std::lock_guard<std::mutex> lock(grow_mu_);
    if (next_slab_ >= slab_owner_.size()) {
      return nullptr;
    }
    slab_index = next_slab_++;
    slab_owner_[slab_index] = arena_index;
  }
  std::uint8_t* slab = base_ + slab_index * config_.slab_bytes;
  if (mprotect(slab, config_.slab_bytes, PROT_READ | PROT_WRITE) != 0) {
    return nullptr;  // the slab index is burned, but correctness holds
  }
  committed_slabs_.fetch_add(1, std::memory_order_relaxed);
  // mprotect commits address space, not pages: physical pages are placed
  // when the owner thread first writes them (first-touch), i.e. on the
  // owner's NUMA node under `--placement` pinning.
  arena.bump = slab + config_.block_bytes;
  arena.bump_end = slab + blocks_per_slab_ * config_.block_bytes;
  return slab;
}

void* SlabAllocator::FallbackAlloc() {
  fallback_allocs_.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(config_.block_bytes, std::align_val_t{config_.block_align});
}

void SlabAllocator::Free(void* block) {
  if (block == nullptr) {
    return;
  }
  if (!InRegion(block)) {
    fallback_frees_.fetch_add(1, std::memory_order_relaxed);
    ::operator delete(block, std::align_val_t{config_.block_align});
    return;
  }
  const std::size_t slab_index =
      static_cast<std::size_t>(static_cast<std::uint8_t*>(block) - base_) / config_.slab_bytes;
  const std::int32_t owner = slab_owner_[slab_index];
  Arena& arena = arenas_[owner];
  auto* node = static_cast<FreeNode*>(block);
  if (tls_binding.owner == this && tls_binding.generation == generation_ &&
      tls_binding.arena == owner) {
    node->next = arena.free_list;
    arena.free_list = node;
    arena.owner_frees.store(arena.owner_frees.load(std::memory_order_relaxed) + 1,
                            std::memory_order_relaxed);
    return;
  }
  // Remote free: push onto the owner's MPSC stack. Release publishes the
  // node contents to the owner's draining exchange(acquire).
  FreeNode* head = arena.remote_head.load(std::memory_order_relaxed);
  do {
    node->next = head;
  } while (!arena.remote_head.compare_exchange_weak(head, node, std::memory_order_release,
                                                    std::memory_order_relaxed));
  arena.remote_frees.fetch_add(1, std::memory_order_relaxed);
}

SlabStatsSnapshot SlabAllocator::Stats() const {
  SlabStatsSnapshot s;
  for (int i = 0; i < config_.arenas; ++i) {
    const Arena& arena = arenas_[i];
    s.allocs += arena.allocs.load(std::memory_order_relaxed);
    s.owner_frees += arena.owner_frees.load(std::memory_order_relaxed);
    s.remote_frees += arena.remote_frees.load(std::memory_order_relaxed);
  }
  s.fallback_allocs = fallback_allocs_.load(std::memory_order_relaxed);
  s.fallback_frees = fallback_frees_.load(std::memory_order_relaxed);
  s.allocs += s.fallback_allocs;
  s.slabs = committed_slabs_.load(std::memory_order_relaxed);
  s.slab_bytes = s.slabs * config_.slab_bytes;
  const std::uint64_t frees = s.owner_frees + s.remote_frees + s.fallback_frees;
  // Relaxed counters can transiently read frees ahead of allocs; clamp.
  s.curr_bytes = s.allocs > frees ? (s.allocs - frees) * config_.block_bytes : 0;
  return s;
}

}  // namespace ssync
