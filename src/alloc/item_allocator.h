#ifndef SRC_ALLOC_ITEM_ALLOCATOR_H_
#define SRC_ALLOC_ITEM_ALLOCATOR_H_

namespace ssync {

// Type-erased allocation seam for fixed-size blocks.
//
// Kvs<Mem, Lock> items are private to the store, so the allocator cannot be
// typed on Item; instead the store and the allocator agree out-of-band on a
// fixed block geometry (ssyncd items: 128 bytes, 64-byte aligned) and the
// store does placement-new / explicit-destroy on the raw blocks. The seam is
// deliberately minimal so the header can be included from the Kvs template
// without dragging in any platform or threading dependency — the sim backend
// never sets an allocator and keeps the paper-faithful plain new/delete.
//
// Contract:
//   * Alloc() returns a block of at least the agreed size and alignment;
//     it never returns nullptr (implementations fall back to the global
//     allocator under exhaustion).
//   * Free() accepts any pointer previously returned by Alloc() on this
//     instance, from ANY thread (cross-thread frees are the common case:
//     the grace-period reclaimer returns items other workers allocated).
//   * Free(nullptr) is not allowed; callers guard.
class ItemAllocator {
 public:
  virtual ~ItemAllocator() = default;
  virtual void* Alloc() = 0;
  virtual void Free(void* block) = 0;
};

}  // namespace ssync

#endif  // SRC_ALLOC_ITEM_ALLOCATOR_H_
