#ifndef SRC_ALLOC_SLAB_H_
#define SRC_ALLOC_SLAB_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/alloc/item_allocator.h"
#include "src/util/cacheline.h"

namespace ssync {

// Aggregated allocator accounting, surfaced through the server `stats`
// command and stamped on slab-on ssyncbench rows.
struct SlabStatsSnapshot {
  std::uint64_t allocs = 0;           // blocks handed out (arena + fallback)
  std::uint64_t owner_frees = 0;      // frees by the owning arena's thread
  std::uint64_t remote_frees = 0;     // cross-thread frees (MPSC queue push)
  std::uint64_t slabs = 0;            // committed slabs
  std::uint64_t slab_bytes = 0;       // committed slab bytes
  std::uint64_t curr_bytes = 0;       // live block bytes (allocs - frees)
  std::uint64_t fallback_allocs = 0;  // unregistered-thread global-new blocks
  std::uint64_t fallback_frees = 0;   // global-delete frees of those blocks
};

// NUMA-aware slab allocator for fixed-size items.
//
// One contiguous PROT_NONE virtual reservation is carved into slabs; slabs
// are committed (mprotect RW) on demand and permanently owned by the arena
// that committed them — a flat slab→arena table routes every Free back to
// the owning arena with one shift, no per-block header. Arenas are intended
// to map 1:1 onto pinned server workers:
//
//   * Owner path (the hot path): a plain bump pointer plus a plain
//     singly-linked free list — zero atomic RMWs, no shared lines. Pages get
//     their physical placement on the owner's first write (first-touch), so
//     under `--placement` pinning (src/platform/topology.h) an arena's
//     memory lands on the owner's NUMA node without any libnuma dependency.
//   * Remote path: threads freeing a block they do not own (the worker-0
//     grace-period reclaimer, cross-worker deletes, shutdown teardown) push
//     it onto the owning arena's padded MPSC Treiber stack. The owner drains
//     the whole stack with a single exchange only when its local list runs
//     dry, so remote traffic never steals the owner's cache lines per-op.
//   * Fallback path: threads that never called RegisterThread (loadgen,
//     tests, the main thread) get aligned global new/delete; Free routes by
//     range check, so fallback blocks and slab blocks can be freed from
//     anywhere in any order.
//
// The sim backend never constructs one of these: simulated runs keep the
// paper-faithful plain new/delete so fig12 stays byte-identical.
class SlabAllocator final : public ItemAllocator {
 public:
  struct Config {
    std::size_t block_bytes = 128;  // sizeof(Kvs::Item), already padded
    std::size_t block_align = kCacheLineSize;
    int arenas = 1;                 // one per pinned worker
    std::size_t slab_bytes = std::size_t{1} << 20;    // commit granularity
    std::size_t reserve_bytes = std::size_t{1} << 30; // VA reservation (lazy)
  };

  explicit SlabAllocator(const Config& config);
  ~SlabAllocator() override;

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  // Binds the calling thread to `arena` as its owner. Call once per worker,
  // on the worker's own thread, AFTER it has been pinned — first-touch NUMA
  // placement keys off where the thread runs when it first writes a page.
  // Rebinding (same or different arena) is allowed; the binding is
  // per-thread, per-allocator-instance.
  void RegisterThread(int arena);

  void* Alloc() override;
  void Free(void* block) override;

  SlabStatsSnapshot Stats() const;

  int arenas() const { return config_.arenas; }
  const Config& config() const { return config_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  struct alignas(kCacheLineSize) Arena {
    // Owner-thread state: only ever touched by the registered owner.
    FreeNode* free_list = nullptr;
    std::uint8_t* bump = nullptr;
    std::uint8_t* bump_end = nullptr;
    // Monotonic counters; single-writer (the owner), so they are plain
    // relaxed stores on the owner path — atomics only so Stats() can read
    // them from other threads without a data race.
    std::atomic<std::uint64_t> allocs{0};
    std::atomic<std::uint64_t> owner_frees{0};
    // Shared MPSC remote-free stack, padded onto its own line so remote
    // pushers never bounce the owner's bump/free-list line.
    alignas(kCacheLineSize) std::atomic<FreeNode*> remote_head{nullptr};
    std::atomic<std::uint64_t> remote_frees{0};
  };

  bool InRegion(const void* block) const {
    const auto* b = static_cast<const std::uint8_t*>(block);
    return base_ != nullptr && b >= base_ && b < base_ + reserved_bytes_;
  }
  void* AllocSlow(Arena& arena, int arena_index);
  void* CommitSlab(Arena& arena, int arena_index);
  void* FallbackAlloc();

  Config config_;
  std::uint64_t generation_ = 0;   // distinguishes instances across reuse
  std::uint8_t* base_ = nullptr;   // PROT_NONE reservation (nullptr: degraded)
  std::size_t reserved_bytes_ = 0;
  std::size_t blocks_per_slab_ = 0;
  std::unique_ptr<Arena[]> arenas_;

  // Slab growth (rare): guarded by grow_mu_. slab_owner_ is preallocated to
  // its final size and each entry is written under the mutex before any
  // block of that slab escapes the committing thread, so lock-free readers
  // in Free() see it through the happens-before edge that delivered them
  // the block pointer.
  std::mutex grow_mu_;
  std::size_t next_slab_ = 0;
  std::vector<std::int32_t> slab_owner_;

  std::atomic<std::uint64_t> committed_slabs_{0};
  std::atomic<std::uint64_t> fallback_allocs_{0};
  std::atomic<std::uint64_t> fallback_frees_{0};
};

}  // namespace ssync

#endif  // SRC_ALLOC_SLAB_H_
