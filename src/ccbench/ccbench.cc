#include "src/ccbench/ccbench.h"

#include "src/util/check.h"

namespace ssync {
namespace {

// Virtual-time gap between preparation accesses and the measured access, so
// per-line busy windows never overlap between steps.
constexpr Cycles kStepGap = 100000;

}  // namespace

Cycles CcBench::Issue(CpuId cpu, LineAddr line, AccessType op) {
  clock_ += kStepGap;
  const AccessResult r = machine_->AccessAt(cpu, line, op, clock_);
  return r.total();
}

CcBench::Sample CcBench::Measure(AccessType op, LineState prev, CpuId requester,
                                 CpuId partner, CpuId second, int reps) {
  const NodeId home = machine_->spec().MemNodeOf(partner);
  return MeasureWithHome(op, prev, requester, partner, second, home, reps);
}

CcBench::Sample CcBench::MeasureWithHome(AccessType op, LineState prev, CpuId requester,
                                         CpuId partner, CpuId second, NodeId home,
                                         int reps) {
  SSYNC_CHECK_GT(reps, 0);
  RunningStat stat;
  Source source = Source::kL1;
  for (int rep = 0; rep < reps; ++rep) {
    const LineAddr line = FreshLine();
    machine_->SetHome(line, home);
    switch (prev) {
      case LineState::kInvalid:
        break;  // untouched: the access goes to memory
      case LineState::kModified:
        Issue(partner, line, AccessType::kStore);
        break;
      case LineState::kExclusive:
        Issue(partner, line, AccessType::kLoad);
        break;
      case LineState::kShared:
        Issue(partner, line, AccessType::kLoad);
        Issue(second, line, AccessType::kLoad);
        break;
      case LineState::kOwned:
        Issue(partner, line, AccessType::kStore);
        Issue(second, line, AccessType::kLoad);
        break;
      default:
        SSYNC_CHECK(false);
    }
    clock_ += kStepGap;
    const AccessResult r = machine_->AccessAt(requester, line, op, clock_);
    stat.Add(static_cast<double>(r.total()));
    source = r.source;
  }
  return Sample{stat.mean(), stat.cv_percent(), source};
}

CcBench::Sample CcBench::MeasureL1Load(CpuId cpu, int reps) {
  RunningStat stat;
  Source source = Source::kL1;
  for (int rep = 0; rep < reps; ++rep) {
    const LineAddr line = FreshLine();
    machine_->SetHome(line, machine_->spec().MemNodeOf(cpu));
    Issue(cpu, line, AccessType::kLoad);  // fill
    clock_ += kStepGap;
    const AccessResult r = machine_->AccessAt(cpu, line, AccessType::kLoad, clock_);
    stat.Add(static_cast<double>(r.total()));
    source = r.source;
  }
  return Sample{stat.mean(), stat.cv_percent(), source};
}

CcBench::Sample CcBench::MeasureL2Load(CpuId cpu, int reps) {
  RunningStat stat;
  Source source = Source::kL2;
  for (int rep = 0; rep < reps; ++rep) {
    const LineAddr line = FreshLine();
    machine_->SetHome(line, machine_->spec().MemNodeOf(cpu));
    Issue(cpu, line, AccessType::kLoad);  // fill the L1
    machine_->DemoteToL2(cpu, line);
    clock_ += kStepGap;
    const AccessResult r = machine_->AccessAt(cpu, line, AccessType::kLoad, clock_);
    stat.Add(static_cast<double>(r.total()));
    source = r.source;
  }
  return Sample{stat.mean(), stat.cv_percent(), source};
}

CcBench::Sample CcBench::MeasureRamLoad(CpuId cpu, int reps) {
  RunningStat stat;
  Source source = Source::kMemLocal;
  for (int rep = 0; rep < reps; ++rep) {
    const LineAddr line = FreshLine();
    machine_->SetHome(line, machine_->spec().MemNodeOf(cpu));
    clock_ += kStepGap;
    const AccessResult r = machine_->AccessAt(cpu, line, AccessType::kLoad, clock_);
    stat.Add(static_cast<double>(r.total()));
    source = r.source;
  }
  return Sample{stat.mean(), stat.cv_percent(), source};
}

}  // namespace ssync
