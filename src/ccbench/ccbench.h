// ccbench: measures the cost of an operation on a cache line depending on
// the line's MESI state and its placement in the system (Section 4.2).
//
// Drives the Machine's pure state-machine API with synthetic lines: each
// measurement prepares a fresh line into the requested state at the requested
// cpus (via the same access sequences real ccbench uses), then issues the
// operation from the requester and records the protocol latency. Regenerates
// the paper's Tables 2 and 3.
#ifndef SRC_CCBENCH_CCBENCH_H_
#define SRC_CCBENCH_CCBENCH_H_

#include "src/ccsim/machine.h"
#include "src/util/stats.h"

namespace ssync {

class CcBench {
 public:
  explicit CcBench(Machine* machine) : machine_(machine) {}

  struct Sample {
    double mean = 0.0;
    double cv_percent = 0.0;
    Source source = Source::kL1;
  };

  // One Table-2 cell: `op` issued by `requester` on a line whose previous
  // state is `prev` at `partner` (the previous holder). For the Shared and
  // Owned states, `second` is the second sharer (the paper places two
  // sharers for the store-on-shared case). The line's home is the partner's
  // memory node — the paper's best case, in which at least one involved core
  // is local to the directory.
  Sample Measure(AccessType op, LineState prev, CpuId requester, CpuId partner,
                 CpuId second, int reps);

  // As Measure, but with an explicit home node (used for worst-case-directory
  // experiments and the Tilera, where distance == home distance).
  Sample MeasureWithHome(AccessType op, LineState prev, CpuId requester, CpuId partner,
                         CpuId second, NodeId home, int reps);

  // Local-latency probes (Table 3).
  Sample MeasureL1Load(CpuId cpu, int reps);
  Sample MeasureL2Load(CpuId cpu, int reps);   // platforms with a private L2
  Sample MeasureRamLoad(CpuId cpu, int reps);  // local-node DRAM

 private:
  LineAddr FreshLine() { return next_line_++; }
  Cycles Issue(CpuId cpu, LineAddr line, AccessType op);

  Machine* machine_;
  Cycles clock_ = 0;
  LineAddr next_line_ = 1ULL << 40;  // synthetic, never collides with host lines
};

}  // namespace ssync

#endif  // SRC_CCBENCH_CCBENCH_H_
