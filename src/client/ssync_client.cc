#include "src/client/ssync_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ssync {

namespace {

constexpr char kCrlf[] = "\r\n";

// Terminal events complete one request; kValue and kStat are interior lines
// of a get/stats reply.
bool IsTerminal(ClientEvent::Kind kind) {
  return kind != ClientEvent::Kind::kValue && kind != ClientEvent::Kind::kStat;
}

bool ParseU64(const char* s, std::size_t len, std::uint64_t* out) {
  if (len == 0) return false;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < len; ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
  }
  *out = v;
  return true;
}

void AppendU64(std::uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

}  // namespace

// ---------------------------------------------------------------------------
// Request formatters.

void AppendGetRequest(const std::string* keys, std::size_t n, bool want_cas,
                      std::string* out) {
  out->append(want_cas ? "gets" : "get");
  for (std::size_t i = 0; i < n; ++i) {
    out->push_back(' ');
    out->append(keys[i]);
  }
  out->append(kCrlf);
}

void AppendSetRequest(const std::string& key, std::uint32_t flags,
                      std::uint32_t exptime, const std::string& data,
                      std::string* out) {
  out->append("set ");
  out->append(key);
  out->push_back(' ');
  AppendU64(flags, out);
  out->push_back(' ');
  AppendU64(exptime, out);
  out->push_back(' ');
  AppendU64(data.size(), out);
  out->append(kCrlf);
  out->append(data);
  out->append(kCrlf);
}

void AppendCasRequest(const std::string& key, std::uint32_t flags,
                      std::uint32_t exptime, std::uint64_t cas_unique,
                      const std::string& data, std::string* out) {
  out->append("cas ");
  out->append(key);
  out->push_back(' ');
  AppendU64(flags, out);
  out->push_back(' ');
  AppendU64(exptime, out);
  out->push_back(' ');
  AppendU64(data.size(), out);
  out->push_back(' ');
  AppendU64(cas_unique, out);
  out->append(kCrlf);
  out->append(data);
  out->append(kCrlf);
}

void AppendDeleteRequest(const std::string& key, std::string* out) {
  out->append("delete ");
  out->append(key);
  out->append(kCrlf);
}

void AppendIncrDecrRequest(const std::string& key, std::uint64_t delta,
                           bool incr, std::string* out) {
  out->append(incr ? "incr " : "decr ");
  out->append(key);
  out->push_back(' ');
  AppendU64(delta, out);
  out->append(kCrlf);
}

void AppendTouchRequest(const std::string& key, std::uint32_t exptime,
                        std::string* out) {
  out->append("touch ");
  out->append(key);
  out->push_back(' ');
  AppendU64(exptime, out);
  out->append(kCrlf);
}

void AppendFlushAllRequest(std::string* out) { out->append("flush_all\r\n"); }
void AppendStatsRequest(std::string* out) { out->append("stats\r\n"); }
void AppendVersionRequest(std::string* out) { out->append("version\r\n"); }
void AppendQuitRequest(std::string* out) { out->append("quit\r\n"); }

// ---------------------------------------------------------------------------
// ResponseParser.

ResponseParser::Status ResponseParser::Next(ClientEvent* event) {
  if (broken_) return Status::kBroken;
  for (;;) {
    if (value_pending_) {
      // The data block is framed by the advertised byte count plus CRLF —
      // never by line scanning, so values may contain any bytes.
      if (buf_.size() - pos_ < value_bytes_ + 2) return Status::kNeedMore;
      if (buf_[pos_ + value_bytes_] != '\r' ||
          buf_[pos_ + value_bytes_ + 1] != '\n') {
        broken_ = true;
        return Status::kBroken;
      }
      pending_.data.assign(buf_, pos_, value_bytes_);
      pos_ += value_bytes_ + 2;
      value_pending_ = false;
      *event = std::move(pending_);
      pending_ = ClientEvent();
      // Reclaim the consumed prefix once it dominates the buffer.
      if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(0, pos_);
        pos_ = 0;
      }
      return Status::kEvent;
    }
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl == std::string::npos) return Status::kNeedMore;
    std::size_t len = nl - pos_;
    const char* line = buf_.data() + pos_;
    if (len > 0 && line[len - 1] == '\r') --len;
    const std::size_t line_start = pos_;
    pos_ = nl + 1;
    const Status s = ParseLine(line, len, event);
    if (s == Status::kBroken) {
      pos_ = line_start;  // leave the stream where it broke, for diagnosis
      broken_ = true;
      return s;
    }
    if (s == Status::kEvent) {
      if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(0, pos_);
        pos_ = 0;
      }
      return s;
    }
    // kNeedMore from ParseLine means "line consumed, no event yet" — only a
    // VALUE header does this; loop to try completing its data block.
  }
}

ResponseParser::Status ResponseParser::ParseLine(const char* line,
                                                 std::size_t len,
                                                 ClientEvent* event) {
  using Kind = ClientEvent::Kind;
  const std::string text(line, len);
  auto simple = [&](Kind kind) {
    *event = ClientEvent();
    event->kind = kind;
    return Status::kEvent;
  };
  if (text.compare(0, 6, "VALUE ") == 0) {
    // VALUE <key> <flags> <bytes> [<cas>]
    std::uint64_t fields[3] = {0, 0, 0};
    std::size_t sp1 = text.find(' ', 6);
    if (sp1 == std::string::npos) return Status::kBroken;
    std::size_t field_start = sp1 + 1;
    int nfields = 0;
    while (nfields < 3 && field_start <= text.size()) {
      std::size_t sp = text.find(' ', field_start);
      const std::size_t end = (sp == std::string::npos) ? text.size() : sp;
      if (!ParseU64(text.data() + field_start, end - field_start,
                    &fields[nfields])) {
        return Status::kBroken;
      }
      ++nfields;
      if (sp == std::string::npos) break;
      field_start = sp + 1;
    }
    if (nfields < 2) return Status::kBroken;
    pending_ = ClientEvent();
    pending_.kind = Kind::kValue;
    pending_.key.assign(text, 6, sp1 - 6);
    pending_.flags = static_cast<std::uint32_t>(fields[0]);
    pending_.has_cas = nfields == 3;
    pending_.cas = pending_.has_cas ? fields[2] : 0;
    value_pending_ = true;
    value_bytes_ = static_cast<std::size_t>(fields[1]);
    return Status::kNeedMore;
  }
  if (text == "END") return simple(Kind::kEnd);
  if (text == "STORED") return simple(Kind::kStored);
  if (text == "EXISTS") return simple(Kind::kExists);
  if (text == "NOT_FOUND") return simple(Kind::kNotFound);
  if (text == "DELETED") return simple(Kind::kDeleted);
  if (text == "TOUCHED") return simple(Kind::kTouched);
  if (text == "OK") return simple(Kind::kOk);
  if (text.compare(0, 5, "STAT ") == 0) {
    const std::size_t sp = text.find(' ', 5);
    if (sp == std::string::npos) return Status::kBroken;
    *event = ClientEvent();
    event->kind = Kind::kStat;
    event->key.assign(text, 5, sp - 5);
    event->data.assign(text, sp + 1, std::string::npos);
    return Status::kEvent;
  }
  if (text.compare(0, 8, "VERSION ") == 0) {
    *event = ClientEvent();
    event->kind = Kind::kVersion;
    event->data.assign(text, 8, std::string::npos);
    return Status::kEvent;
  }
  std::uint64_t number = 0;
  if (ParseU64(line, len, &number)) {
    *event = ClientEvent();
    event->kind = Kind::kNumber;
    event->number = number;
    return Status::kEvent;
  }
  if (text == "ERROR" || text.compare(0, 13, "CLIENT_ERROR ") == 0 ||
      text.compare(0, 13, "SERVER_ERROR ") == 0) {
    *event = ClientEvent();
    event->kind = Kind::kError;
    event->data = text;
    return Status::kEvent;
  }
  return Status::kBroken;
}

// ---------------------------------------------------------------------------
// SsyncClient.

SsyncClient::~SsyncClient() { Close(); }

SsyncClient::SsyncClient(SsyncClient&& other) noexcept
    : fd_(other.fd_),
      parser_(std::move(other.parser_)),
      queued_(std::move(other.queued_)),
      queued_terminals_(other.queued_terminals_),
      last_error_(std::move(other.last_error_)) {
  other.fd_ = -1;
  other.queued_terminals_ = 0;
}

SsyncClient& SsyncClient::operator=(SsyncClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    parser_ = std::move(other.parser_);
    queued_ = std::move(other.queued_);
    queued_terminals_ = other.queued_terminals_;
    last_error_ = std::move(other.last_error_);
    other.fd_ = -1;
    other.queued_terminals_ = 0;
  }
  return *this;
}

bool SsyncClient::Connect(const std::string& host, std::uint16_t port,
                          std::string* error, int recv_timeout_s) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad address: " + host;
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = "connect: " + std::string(strerror(errno));
    Close();
    return false;
  }
  timeval tv{};
  tv.tv_sec = recv_timeout_s;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  parser_ = ResponseParser();
  queued_.clear();
  queued_terminals_ = 0;
  last_error_.clear();
  return true;
}

void SsyncClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SsyncClient::Fail(const std::string& why) {
  last_error_ = why;
  return false;
}

bool SsyncClient::SendAll(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      return Fail("send: " + std::string(strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool SsyncClient::ReadEvents(std::size_t terminals,
                             std::vector<ClientEvent>* events) {
  std::size_t seen = 0;
  char chunk[4096];
  while (seen < terminals) {
    ClientEvent event;
    const ResponseParser::Status s = parser_.Next(&event);
    if (s == ResponseParser::Status::kBroken) {
      return Fail("protocol framing violation from server");
    }
    if (s == ResponseParser::Status::kEvent) {
      if (IsTerminal(event.kind)) ++seen;
      if (events != nullptr) events->push_back(std::move(event));
      continue;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Fail("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Fail("recv: " + std::string(strerror(errno)));
    }
    parser_.Feed(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

bool SsyncClient::Set(const std::string& key, const std::string& data,
                      std::uint32_t flags, std::uint32_t exptime) {
  last_error_.clear();
  std::string req;
  AppendSetRequest(key, flags, exptime, data, &req);
  if (!SendAll(req)) return false;
  std::vector<ClientEvent> events;
  if (!ReadEvents(1, &events)) return false;
  const ClientEvent& e = events.back();
  if (e.kind == ClientEvent::Kind::kStored) return true;
  if (e.kind == ClientEvent::Kind::kError) return Fail(e.data);
  return Fail("unexpected reply to set");
}

SsyncClient::CasStatus SsyncClient::Cas(const std::string& key,
                                        const std::string& data,
                                        std::uint64_t cas_unique,
                                        std::uint32_t flags,
                                        std::uint32_t exptime) {
  last_error_.clear();
  std::string req;
  AppendCasRequest(key, flags, exptime, cas_unique, data, &req);
  if (!SendAll(req)) return CasStatus::kFailed;
  std::vector<ClientEvent> events;
  if (!ReadEvents(1, &events)) return CasStatus::kFailed;
  switch (events.back().kind) {
    case ClientEvent::Kind::kStored:
      return CasStatus::kStored;
    case ClientEvent::Kind::kExists:
      return CasStatus::kExists;
    case ClientEvent::Kind::kNotFound:
      return CasStatus::kNotFound;
    case ClientEvent::Kind::kError:
      Fail(events.back().data);
      return CasStatus::kFailed;
    default:
      Fail("unexpected reply to cas");
      return CasStatus::kFailed;
  }
}

bool SsyncClient::Get(const std::string& key, ClientValue* value) {
  std::vector<std::string> keys{key};
  std::vector<ClientValue> values;
  if (!GetMulti(keys, /*want_cas=*/false, &values)) return false;
  *value = std::move(values[0]);
  return value->found;
}

bool SsyncClient::Gets(const std::string& key, ClientValue* value) {
  std::vector<std::string> keys{key};
  std::vector<ClientValue> values;
  if (!GetMulti(keys, /*want_cas=*/true, &values)) return false;
  *value = std::move(values[0]);
  return value->found;
}

bool SsyncClient::GetMulti(const std::vector<std::string>& keys, bool want_cas,
                           std::vector<ClientValue>* values) {
  last_error_.clear();
  values->assign(keys.size(), ClientValue());
  std::string req;
  AppendGetRequest(keys.data(), keys.size(), want_cas, &req);
  if (!SendAll(req)) return false;
  std::vector<ClientEvent> events;
  if (!ReadEvents(1, &events)) return false;
  if (events.back().kind == ClientEvent::Kind::kError) {
    return Fail(events.back().data);
  }
  if (events.back().kind != ClientEvent::Kind::kEnd) {
    return Fail("unexpected reply to get");
  }
  for (const ClientEvent& e : events) {
    if (e.kind != ClientEvent::Kind::kValue) continue;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] != e.key) continue;
      ClientValue& v = (*values)[i];
      v.found = true;
      v.flags = e.flags;
      v.cas = e.cas;
      v.data = e.data;
      break;
    }
  }
  return true;
}

bool SsyncClient::Delete(const std::string& key) {
  last_error_.clear();
  std::string req;
  AppendDeleteRequest(key, &req);
  if (!SendAll(req)) return false;
  std::vector<ClientEvent> events;
  if (!ReadEvents(1, &events)) return false;
  const ClientEvent& e = events.back();
  if (e.kind == ClientEvent::Kind::kDeleted) return true;
  if (e.kind == ClientEvent::Kind::kNotFound) return false;
  if (e.kind == ClientEvent::Kind::kError) return Fail(e.data);
  return Fail("unexpected reply to delete");
}

bool SsyncClient::Incr(const std::string& key, std::uint64_t delta,
                       std::uint64_t* new_value) {
  last_error_.clear();
  std::string req;
  AppendIncrDecrRequest(key, delta, /*incr=*/true, &req);
  if (!SendAll(req)) return false;
  std::vector<ClientEvent> events;
  if (!ReadEvents(1, &events)) return false;
  const ClientEvent& e = events.back();
  if (e.kind == ClientEvent::Kind::kNumber) {
    if (new_value != nullptr) *new_value = e.number;
    return true;
  }
  if (e.kind == ClientEvent::Kind::kError) return Fail(e.data);
  return false;  // NOT_FOUND
}

bool SsyncClient::Decr(const std::string& key, std::uint64_t delta,
                       std::uint64_t* new_value) {
  last_error_.clear();
  std::string req;
  AppendIncrDecrRequest(key, delta, /*incr=*/false, &req);
  if (!SendAll(req)) return false;
  std::vector<ClientEvent> events;
  if (!ReadEvents(1, &events)) return false;
  const ClientEvent& e = events.back();
  if (e.kind == ClientEvent::Kind::kNumber) {
    if (new_value != nullptr) *new_value = e.number;
    return true;
  }
  if (e.kind == ClientEvent::Kind::kError) return Fail(e.data);
  return false;  // NOT_FOUND
}

bool SsyncClient::Touch(const std::string& key, std::uint32_t exptime) {
  last_error_.clear();
  std::string req;
  AppendTouchRequest(key, exptime, &req);
  if (!SendAll(req)) return false;
  std::vector<ClientEvent> events;
  if (!ReadEvents(1, &events)) return false;
  const ClientEvent& e = events.back();
  if (e.kind == ClientEvent::Kind::kTouched) return true;
  if (e.kind == ClientEvent::Kind::kError) return Fail(e.data);
  return false;  // NOT_FOUND
}

bool SsyncClient::FlushAll() {
  last_error_.clear();
  std::string req;
  AppendFlushAllRequest(&req);
  if (!SendAll(req)) return false;
  std::vector<ClientEvent> events;
  if (!ReadEvents(1, &events)) return false;
  if (events.back().kind == ClientEvent::Kind::kOk) return true;
  if (events.back().kind == ClientEvent::Kind::kError) {
    return Fail(events.back().data);
  }
  return Fail("unexpected reply to flush_all");
}

bool SsyncClient::Stats(
    std::unordered_map<std::string, std::string>* stats) {
  last_error_.clear();
  stats->clear();
  std::string req;
  AppendStatsRequest(&req);
  if (!SendAll(req)) return false;
  std::vector<ClientEvent> events;
  if (!ReadEvents(1, &events)) return false;
  if (events.back().kind != ClientEvent::Kind::kEnd) {
    return Fail("unexpected reply to stats");
  }
  for (ClientEvent& e : events) {
    if (e.kind == ClientEvent::Kind::kStat) {
      (*stats)[std::move(e.key)] = std::move(e.data);
    }
  }
  return true;
}

bool SsyncClient::Version(std::string* text) {
  last_error_.clear();
  std::string req;
  AppendVersionRequest(&req);
  if (!SendAll(req)) return false;
  std::vector<ClientEvent> events;
  if (!ReadEvents(1, &events)) return false;
  if (events.back().kind != ClientEvent::Kind::kVersion) {
    return Fail("unexpected reply to version");
  }
  if (text != nullptr) *text = std::move(events.back().data);
  return true;
}

bool SsyncClient::Quit() {
  last_error_.clear();
  std::string req;
  AppendQuitRequest(&req);
  return SendAll(req);
}

bool SsyncClient::WaitPeerClose() {
  char chunk[256];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return true;
    if (n < 0) {
      if (errno == EINTR) continue;
      return Fail("recv while awaiting close: " + std::string(strerror(errno)));
    }
    // The server may still flush replies queued before quit; discard them.
  }
}

void SsyncClient::QueueGet(const std::string* keys, std::size_t n,
                           bool want_cas) {
  AppendGetRequest(keys, n, want_cas, &queued_);
  ++queued_terminals_;
}

void SsyncClient::QueueSet(const std::string& key, const std::string& data,
                           std::uint32_t flags, std::uint32_t exptime) {
  AppendSetRequest(key, flags, exptime, data, &queued_);
  ++queued_terminals_;
}

void SsyncClient::QueueDelete(const std::string& key) {
  AppendDeleteRequest(key, &queued_);
  ++queued_terminals_;
}

bool SsyncClient::Drain(std::vector<ClientEvent>* events) {
  last_error_.clear();
  const std::size_t terminals = queued_terminals_;
  std::string out = std::move(queued_);
  queued_.clear();
  queued_terminals_ = 0;
  if (terminals == 0) return true;
  if (!SendAll(out)) return false;
  return ReadEvents(terminals, events);
}

std::int64_t StatInt(
    const std::unordered_map<std::string, std::string>& stats,
    const std::string& name) {
  const auto it = stats.find(name);
  if (it == stats.end()) return -1;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || errno != 0) return -1;
  return static_cast<std::int64_t>(v);
}

}  // namespace ssync
