// Thin memcached-text-protocol client for ssyncd — the supported way to
// script the server from tests and tools. Three layers, each usable on its
// own:
//
//   * Request formatters: append one wire-format request to a caller-owned
//     buffer. Pure string building, no I/O — callers that own their event
//     loop (ssyncload) pipeline by concatenating.
//   * ResponseParser: an incremental, binary-safe parser turning a byte
//     stream into typed ClientEvents (VALUE blocks are framed by their byte
//     count, never by line scanning, so values may contain \r\n).
//   * SsyncClient: a blocking socket session with one call per protocol op
//     (Get/Set/Cas/Incr/Touch/Stats/...), plus Queue*/Drain pipelined
//     variants that batch many requests into one round trip.
//
// The library deliberately depends only on src/util — it is a client, not a
// window into server internals.
#ifndef SRC_CLIENT_SSYNC_CLIENT_H_
#define SRC_CLIENT_SSYNC_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ssync {

// ---------------------------------------------------------------------------
// Request formatters. Each appends exactly one request to *out.

void AppendGetRequest(const std::string* keys, std::size_t n, bool want_cas,
                      std::string* out);
void AppendSetRequest(const std::string& key, std::uint32_t flags,
                      std::uint32_t exptime, const std::string& data,
                      std::string* out);
void AppendCasRequest(const std::string& key, std::uint32_t flags,
                      std::uint32_t exptime, std::uint64_t cas_unique,
                      const std::string& data, std::string* out);
void AppendDeleteRequest(const std::string& key, std::string* out);
// incr == true formats "incr", false "decr".
void AppendIncrDecrRequest(const std::string& key, std::uint64_t delta,
                           bool incr, std::string* out);
void AppendTouchRequest(const std::string& key, std::uint32_t exptime,
                        std::string* out);
void AppendFlushAllRequest(std::string* out);
void AppendStatsRequest(std::string* out);
void AppendVersionRequest(std::string* out);
void AppendQuitRequest(std::string* out);

// ---------------------------------------------------------------------------
// One parsed server reply event.

struct ClientEvent {
  enum class Kind {
    kValue,     // one VALUE header + data block (a get hit)
    kEnd,       // END — terminates a get/gets or stats reply
    kStored,    // STORED
    kExists,    // EXISTS (cas conflict)
    kNotFound,  // NOT_FOUND
    kDeleted,   // DELETED
    kTouched,   // TOUCHED
    kOk,        // OK (flush_all)
    kNumber,    // incr/decr success: the bare new value
    kStat,      // STAT <name> <value>
    kVersion,   // VERSION <text>
    kError,     // ERROR / CLIENT_ERROR ... / SERVER_ERROR ...
  };
  Kind kind = Kind::kEnd;
  std::string key;           // kValue: the key; kStat: the stat name
  std::uint32_t flags = 0;   // kValue
  bool has_cas = false;      // kValue: header carried a cas unique (gets)
  std::uint64_t cas = 0;     // kValue when has_cas
  std::uint64_t number = 0;  // kNumber
  // kValue: the data block (binary-safe); kStat: the value; kVersion: the
  // text after "VERSION "; kError: the full error line.
  std::string data;
};

// Incremental parser: Feed() bytes as they arrive, then pull events with
// Next() until it reports kNeedMore. A framing violation (bad VALUE header,
// missing CRLF after a data block, unknown line) latches kBroken — the
// stream has lost sync and the connection should be dropped.
class ResponseParser {
 public:
  enum class Status { kNeedMore, kEvent, kBroken };

  void Feed(const char* data, std::size_t len) { buf_.append(data, len); }
  Status Next(ClientEvent* event);
  bool broken() const { return broken_; }

  // Bytes buffered but not yet consumed by Next().
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  Status ParseLine(const char* line, std::size_t len, ClientEvent* event);

  std::string buf_;
  std::size_t pos_ = 0;       // consumed prefix of buf_
  bool value_pending_ = false;  // VALUE header seen, data block incomplete
  std::size_t value_bytes_ = 0;
  ClientEvent pending_;  // the partially built kValue event
  bool broken_ = false;
};

// ---------------------------------------------------------------------------
// Blocking client session.

// The result of one key lookup.
struct ClientValue {
  bool found = false;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;  // populated by Gets/GetMulti(want_cas)
  std::string data;
};

class SsyncClient {
 public:
  SsyncClient() = default;
  ~SsyncClient();

  SsyncClient(const SsyncClient&) = delete;
  SsyncClient& operator=(const SsyncClient&) = delete;
  SsyncClient(SsyncClient&& other) noexcept;
  SsyncClient& operator=(SsyncClient&& other) noexcept;

  // Connects with a receive timeout so a wedged server fails the test
  // instead of hanging it. Returns false and fills *error on failure.
  bool Connect(const std::string& host, std::uint16_t port, std::string* error,
               int recv_timeout_s = 5);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Blocking ops — each issues one request and waits for its full reply.
  // "false" means miss/conflict or transport/protocol failure; a transport
  // or server-error failure leaves the reason in last_error() (a clean miss
  // leaves it empty).
  bool Set(const std::string& key, const std::string& data,
           std::uint32_t flags = 0, std::uint32_t exptime = 0);
  enum class CasStatus { kStored, kExists, kNotFound, kFailed };
  CasStatus Cas(const std::string& key, const std::string& data,
                std::uint64_t cas_unique, std::uint32_t flags = 0,
                std::uint32_t exptime = 0);
  bool Get(const std::string& key, ClientValue* value);
  bool Gets(const std::string& key, ClientValue* value);  // fills value->cas
  // One multi-get; *values gets one entry per key, in key order. Returns
  // false only on transport/protocol failure.
  bool GetMulti(const std::vector<std::string>& keys, bool want_cas,
                std::vector<ClientValue>* values);
  bool Delete(const std::string& key);
  bool Incr(const std::string& key, std::uint64_t delta,
            std::uint64_t* new_value);
  bool Decr(const std::string& key, std::uint64_t delta,
            std::uint64_t* new_value);
  bool Touch(const std::string& key, std::uint32_t exptime);
  bool FlushAll();
  bool Stats(std::unordered_map<std::string, std::string>* stats);
  bool Version(std::string* text);
  // Sends quit. The server closes its side; WaitPeerClose() observes that.
  bool Quit();
  bool WaitPeerClose();

  // Pipelined variants: Queue* only append to the output buffer; Drain()
  // writes everything and blocks until every queued reply arrived, appending
  // the raw event stream to *events (pass nullptr to discard). One terminal
  // event (END / STORED / ... / ERROR) is expected per queued request.
  void QueueGet(const std::string* keys, std::size_t n, bool want_cas);
  void QueueSet(const std::string& key, const std::string& data,
                std::uint32_t flags = 0, std::uint32_t exptime = 0);
  void QueueDelete(const std::string& key);
  bool Drain(std::vector<ClientEvent>* events);

  const std::string& last_error() const { return last_error_; }

 private:
  bool SendAll(const std::string& bytes);
  // Reads until `terminals` terminal events arrived (or failure).
  bool ReadEvents(std::size_t terminals, std::vector<ClientEvent>* events);
  bool Fail(const std::string& why);

  int fd_ = -1;
  ResponseParser parser_;
  std::string queued_;         // pipelined requests not yet written
  std::size_t queued_terminals_ = 0;
  std::string last_error_;
};

// Convenience for tests: the named stat as an integer, -1 when absent or
// non-numeric.
std::int64_t StatInt(
    const std::unordered_map<std::string, std::string>& stats,
    const std::string& name);

}  // namespace ssync

#endif  // SRC_CLIENT_SSYNC_CLIENT_H_
