#include "src/sim/engine.h"

#include <algorithm>

#include "src/util/check.h"

namespace ssync {
namespace {

thread_local Engine* g_current_engine = nullptr;

}  // namespace

Engine* Engine::Current() { return g_current_engine; }

Engine::Engine(int num_cpus) : cpus_(static_cast<std::size_t>(num_cpus)) {
  SSYNC_CHECK_GT(num_cpus, 0);
}

Engine::~Engine() { SSYNC_CHECK(!running_); }

void Engine::Spawn(CpuId cpu, std::function<void()> fn) {
  SSYNC_CHECK(!running_);
  SSYNC_CHECK_GE(cpu, 0);
  SSYNC_CHECK_LT(cpu, num_cpus());
  SSYNC_CHECK(cpus_[cpu].state == State::kIdle);
  cpus_[cpu].fn = std::move(fn);
  cpus_[cpu].state = State::kRunnable;
}

void Engine::PushRunnable(CpuId cpu) {
  heap_.push(HeapEntry{cpus_[cpu].clock, cpu});
  // A newly runnable cpu can shrink the running cpu's slack window.
  slack_ = std::min(slack_, cpus_[cpu].clock);
}

void Engine::Run() {
  SSYNC_CHECK(!running_);
  running_ = true;
  Engine* prev_engine = g_current_engine;
  g_current_engine = this;

  live_fibers_ = 0;
  for (CpuId id = 0; id < num_cpus(); ++id) {
    Cpu& cpu = cpus_[id];
    if (cpu.state == State::kRunnable) {
      Cpu* cpu_ptr = &cpu;
      cpu.fiber = std::make_unique<Fiber>([cpu_ptr] { cpu_ptr->fn(); });
      heap_.push(HeapEntry{cpu.clock, id});
      ++live_fibers_;
    }
  }

  while (live_fibers_ > 0) {
    if (heap_.empty()) {
      // Everyone still alive is parked: deadlock.
      std::fprintf(stderr, "sim::Engine deadlock: %d fibers parked, none runnable\n",
                   live_fibers_);
      SSYNC_CHECK(false);
    }
    const HeapEntry top = heap_.top();
    heap_.pop();
    Cpu& cpu = cpus_[top.cpu];
    if (cpu.state != State::kRunnable || cpu.clock != top.clock) {
      continue;  // stale entry (cpu was re-queued or parked meanwhile)
    }
    current_ = top.cpu;
    slack_ = heap_.empty() ? kNeverCycles : heap_.top().clock;
    cpu.state = State::kRunning;
    cpu.fiber->Resume();
    if (cpu.fiber->finished()) {
      cpu.state = State::kFinished;
      --live_fibers_;
    } else if (cpu.state == State::kRunning) {
      cpu.state = State::kRunnable;
      heap_.push(HeapEntry{cpu.clock, top.cpu});
    }
    // kParked: nothing to do; Unpark() requeues it.
  }

  end_time_ = 0;
  for (const Cpu& cpu : cpus_) {
    end_time_ = std::max(end_time_, cpu.clock);
  }
  current_ = -1;
  running_ = false;
  g_current_engine = prev_engine;
}

void Engine::YieldToScheduler() {
  Cpu& cpu = cpus_[current_];
  cpu.fiber->Yield();
}

void Engine::Advance(Cycles c) {
  Cpu& cpu = cpus_[current_];
  cpu.clock += c;
  if (cpu.clock >= stop_at_) {
    stop_ = true;
  }
  while (cpus_[current_].clock > slack_) {
    YieldToScheduler();
  }
}

void Engine::SyncPoint() {
  while (cpus_[current_].clock > slack_) {
    YieldToScheduler();
  }
}

void Engine::Park() {
  Cpu& cpu = cpus_[current_];
  if (cpu.permit) {
    cpu.permit = false;
    cpu.clock = std::max(cpu.clock, cpu.wake_time);
    return;
  }
  cpu.state = State::kParked;
  YieldToScheduler();
  // Unpark() marked us runnable and set wake_time before requeueing.
  SSYNC_CHECK(cpu.state == State::kRunning);
}

void Engine::Unpark(CpuId target, Cycles earliest) {
  SSYNC_CHECK_GE(target, 0);
  SSYNC_CHECK_LT(target, num_cpus());
  Cpu& cpu = cpus_[target];
  if (cpu.state == State::kParked) {
    cpu.clock = std::max(cpu.clock, earliest);
    cpu.state = State::kRunnable;
    PushRunnable(target);
  } else {
    cpu.permit = true;
    cpu.wake_time = std::max(cpu.wake_time, earliest);
  }
}

}  // namespace ssync
