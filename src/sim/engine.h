// Conservative discrete-event engine for the simulated many-core.
//
// Every simulated hardware thread ("cpu") is a fiber with a private virtual
// clock counted in CPU cycles. The engine always resumes the runnable cpu with
// the smallest clock. While running, a cpu may keep executing without a fiber
// switch as long as its clock stays at or below the second-smallest runnable
// clock (its "slack"): within that window no other cpu can perform a globally
// visible action, so local cache hits and spin iterations are cheap.
//
// The ordering contract used by the coherence layer (src/ccsim) is:
//   engine->SyncPoint();        // become the globally minimal cpu
//   ... mutate global coherence state at time now() ...
//   engine->Advance(latency);   // charge the cost, maybe yield
// All globally visible operations therefore execute in virtual-time order,
// which makes runs deterministic and linearizes all memory operations.
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "src/fiber/fiber.h"

namespace ssync {

using Cycles = std::uint64_t;
using CpuId = std::int32_t;

inline constexpr Cycles kNeverCycles = std::numeric_limits<Cycles>::max();

class Engine {
 public:
  explicit Engine(int num_cpus);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Registers the workload that cpu `cpu` will execute. At most one per cpu;
  // must be called before Run().
  void Spawn(CpuId cpu, std::function<void()> fn);

  // Runs until every spawned fiber has finished. Aborts on deadlock (all
  // remaining fibers parked).
  void Run();

  // Makes ShouldStop() return true once any cpu clock reaches `deadline`.
  // Workloads poll ShouldStop() in their main loop.
  void StopAt(Cycles deadline) { stop_at_ = deadline; }
  void RequestStop() { stop_ = true; }
  bool ShouldStop() const { return stop_; }

  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  Cycles cpu_clock(CpuId cpu) const { return cpus_[cpu].clock; }
  // Virtual time at which the last Run() completed (max over cpu clocks).
  Cycles end_time() const { return end_time_; }

  // --- The following are called from inside fibers. ---

  // The engine whose fiber is currently executing (nullptr outside Run()).
  static Engine* Current();

  CpuId current_cpu() const { return current_; }
  Cycles now() const { return cpus_[current_].clock; }

  // Charges `c` cycles to the current cpu, yielding to the scheduler if the
  // clock moves past the slack window.
  void Advance(Cycles c);

  // Alias for charging non-memory work (the paper's "local computation").
  void Compute(Cycles c) { Advance(c); }

  // Ensures the current cpu is the globally minimal one. Call before any
  // globally visible mutation.
  void SyncPoint();

  // Blocks the current fiber until another cpu calls Unpark() on it. If a
  // permit is already pending, consumes it and returns immediately. On wakeup
  // the clock is at least the waker-specified wake time.
  void Park();

  // Makes `cpu` runnable again no earlier than virtual time `earliest`.
  // If the target is not parked yet, a permit is recorded instead (so there
  // are no lost wakeups).
  void Unpark(CpuId cpu, Cycles earliest);

 private:
  enum class State : std::uint8_t { kIdle, kRunnable, kRunning, kParked, kFinished };

  struct Cpu {
    std::unique_ptr<Fiber> fiber;
    std::function<void()> fn;
    Cycles clock = 0;
    State state = State::kIdle;
    bool permit = false;       // pending unpark
    Cycles wake_time = 0;
  };

  struct HeapEntry {
    Cycles clock;
    CpuId cpu;
    bool operator>(const HeapEntry& o) const {
      return clock != o.clock ? clock > o.clock : cpu > o.cpu;
    }
  };

  void PushRunnable(CpuId cpu);
  void YieldToScheduler();

  std::vector<Cpu> cpus_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap_;
  CpuId current_ = -1;
  Cycles slack_ = kNeverCycles;
  Cycles stop_at_ = kNeverCycles;
  Cycles end_time_ = 0;
  bool stop_ = false;
  bool running_ = false;
  int live_fibers_ = 0;
};

}  // namespace ssync

#endif  // SRC_SIM_ENGINE_H_
