// Published values from the paper, used by calibration tests and by the
// benchmark harnesses to print paper-vs-measured comparisons.
//
// Table 2: latencies (cycles) of the cache coherence to load/store/CAS a
// cache line depending on the MESI state and the distance. Table 3: local
// cache and memory latencies. A value of -1 marks cells the paper leaves
// blank (state not applicable on that platform).
#ifndef SRC_PLATFORM_PAPER_DATA_H_
#define SRC_PLATFORM_PAPER_DATA_H_

#include <vector>

#include "src/ccsim/types.h"
#include "src/platform/spec.h"

namespace ssync {

struct PaperTable2Row {
  AccessType op;
  LineState prev_state;
  // Distance-class columns, matching DistanceCases(spec) order:
  //   Opteron: same die, same MCM, one hop, two hops
  //   Xeon:    same die, one hop, two hops
  //   Niagara: same core, other core
  //   Tilera:  one hop, max hops
  std::vector<int> cycles;
};

inline std::vector<PaperTable2Row> PaperTable2(PlatformKind kind) {
  using A = AccessType;
  using L = LineState;
  switch (kind) {
    case PlatformKind::kOpteron:
      return {
          {A::kLoad, L::kModified, {81, 161, 172, 252}},
          {A::kLoad, L::kOwned, {83, 163, 175, 254}},
          {A::kLoad, L::kExclusive, {83, 163, 175, 253}},
          {A::kLoad, L::kShared, {83, 164, 176, 254}},
          {A::kLoad, L::kInvalid, {136, 237, 247, 327}},
          {A::kStore, L::kModified, {83, 172, 191, 273}},
          {A::kStore, L::kOwned, {244, 255, 286, 291}},
          {A::kStore, L::kExclusive, {83, 171, 191, 271}},
          {A::kStore, L::kShared, {246, 255, 286, 296}},
          {A::kCas, L::kModified, {110, 197, 216, 296}},
          {A::kCas, L::kShared, {272, 283, 312, 332}},
      };
    case PlatformKind::kXeon:
      return {
          {A::kLoad, L::kModified, {109, 289, 400}},
          {A::kLoad, L::kExclusive, {92, 273, 383}},
          {A::kLoad, L::kShared, {44, 223, 334}},
          {A::kLoad, L::kInvalid, {355, 492, 601}},
          {A::kStore, L::kModified, {115, 320, 431}},
          {A::kStore, L::kExclusive, {115, 315, 425}},
          {A::kStore, L::kShared, {116, 318, 428}},
          {A::kCas, L::kModified, {120, 324, 430}},
          {A::kCas, L::kShared, {113, 312, 423}},
      };
    case PlatformKind::kNiagara:
      return {
          {A::kLoad, L::kModified, {3, 24}},
          {A::kLoad, L::kExclusive, {3, 24}},
          {A::kLoad, L::kShared, {3, 24}},
          {A::kLoad, L::kInvalid, {176, 176}},
          {A::kStore, L::kModified, {24, 24}},
          {A::kStore, L::kExclusive, {24, 24}},
          {A::kStore, L::kShared, {24, 24}},
          {A::kCas, L::kModified, {71, 66}},
          {A::kFai, L::kModified, {108, 99}},
          {A::kTas, L::kModified, {64, 55}},
          {A::kSwap, L::kModified, {95, 90}},
          {A::kCas, L::kShared, {76, 66}},
          {A::kFai, L::kShared, {99, 99}},
          {A::kTas, L::kShared, {67, 55}},
          {A::kSwap, L::kShared, {93, 90}},
      };
    case PlatformKind::kTilera:
      return {
          {A::kLoad, L::kModified, {45, 65}},
          {A::kLoad, L::kExclusive, {45, 65}},
          {A::kLoad, L::kShared, {45, 65}},
          {A::kLoad, L::kInvalid, {118, 162}},
          {A::kStore, L::kModified, {57, 77}},
          {A::kStore, L::kExclusive, {57, 77}},
          {A::kStore, L::kShared, {86, 106}},
          {A::kCas, L::kModified, {77, 98}},
          {A::kFai, L::kModified, {51, 71}},
          {A::kTas, L::kModified, {70, 89}},
          {A::kSwap, L::kModified, {63, 84}},
          {A::kCas, L::kShared, {124, 142}},
          {A::kFai, L::kShared, {82, 102}},
          {A::kTas, L::kShared, {121, 141}},
          {A::kSwap, L::kShared, {95, 115}},
      };
    default:
      return {};
  }
}

struct PaperTable3 {
  int l1 = -1;
  int l2 = -1;
  int llc = -1;
  int ram = -1;
};

inline PaperTable3 PaperTable3For(PlatformKind kind) {
  switch (kind) {
    case PlatformKind::kOpteron:
      return {3, 15, 40, 136};
    case PlatformKind::kXeon:
      return {5, 11, 44, 355};
    case PlatformKind::kNiagara:
      return {3, -1, 24, 176};
    case PlatformKind::kTilera:
      return {2, 11, 45, 118};
    default:
      return {};
  }
}

// Figure 9: one-to-one message-passing latencies (one-way / round-trip), per
// DistanceCases order.
struct PaperFig9 {
  std::vector<int> one_way;
  std::vector<int> round_trip;
};

inline PaperFig9 PaperFig9For(PlatformKind kind) {
  switch (kind) {
    case PlatformKind::kOpteron:
      return {{262, 472, 506, 660}, {519, 887, 959, 1567}};
    case PlatformKind::kXeon:
      return {{214, 914, 1167}, {564, 1968, 2660}};
    case PlatformKind::kNiagara:
      return {{181, 249}, {337, 471}};
    case PlatformKind::kTilera:
      return {{61, 64}, {120, 138}};
    default:
      return {};
  }
}

}  // namespace ssync

#endif  // SRC_PLATFORM_PAPER_DATA_H_
