#include "src/platform/topology.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>

#include "src/util/check.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ssync {
namespace {

// Reads a small sysfs attribute; returns false when absent/unreadable (the
// signal that a cpu is offline or the tree is not a sysfs layout at all).
bool ReadFileTrimmed(const std::string& path, std::string* out) {
  std::ifstream f(path);
  if (!f) {
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r' ||
                           text.back() == ' ' || text.back() == '\t')) {
    text.pop_back();
  }
  *out = text;
  return true;
}

bool ReadIntFile(const std::string& path, int* out) {
  std::string text;
  if (!ReadFileTrimmed(path, &text) || text.empty()) {
    return false;
  }
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

// Largest cpu number a cpulist may name. Real machines top out orders of
// magnitude below this; the cap keeps a corrupt or hostile range ("0-9e19")
// from expanding into an unbounded loop at process startup.
constexpr long kMaxCpuListEntry = 1 << 16;

// Parses a kernel cpulist ("0-3,8,10-11") into cpu numbers. Malformed
// fragments are skipped rather than fatal: a node list we cannot read only
// costs memory-node fidelity, not the run.
std::vector<int> ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string range =
        text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::size_t dash = range.find('-');
    char* end = nullptr;
    if (dash == std::string::npos) {
      const long v = std::strtol(range.c_str(), &end, 10);
      if (end != range.c_str() && v >= 0 && v <= kMaxCpuListEntry) {
        cpus.push_back(static_cast<int>(v));
      }
    } else {
      const long lo = std::strtol(range.c_str(), &end, 10);
      const bool lo_ok = end == range.c_str() + dash && lo >= 0;
      const char* hi_text = range.c_str() + dash + 1;
      const long hi = std::strtol(hi_text, &end, 10);
      const bool hi_ok = end == range.c_str() + range.size() && end != hi_text;
      if (lo_ok && hi_ok) {
        for (long v = lo; v <= hi && v <= kMaxCpuListEntry; ++v) {
          cpus.push_back(static_cast<int>(v));
        }
      }
    }
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return cpus;
}

struct RawCpu {
  int os_cpu = 0;
  int package_id = 0;  // kernel ids: arbitrary, possibly sparse
  int core_id = 0;     // unique only within a package
  int node_id = -1;    // -1: no node directory claimed this cpu
};

int DefaultCpuCount() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

}  // namespace

std::vector<int> AllowedCpus() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    std::vector<int> cpus;
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &set)) {
        cpus.push_back(cpu);
      }
    }
    if (!cpus.empty()) {
      return cpus;
    }
  }
#endif
  std::vector<int> cpus(static_cast<std::size_t>(DefaultCpuCount()));
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    cpus[i] = static_cast<int>(i);
  }
  return cpus;
}

HostTopology FlatHostTopology(const std::vector<int>& allowed) {
  HostTopology topo;
  topo.source = "flat";
  topo.discovered = false;
  const std::vector<int> cpus = allowed.empty() ? AllowedCpus() : allowed;
  topo.cpus.reserve(cpus.size());
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    HostCpu cpu;
    cpu.os_cpu = cpus[i];
    cpu.core = static_cast<int>(i);
    topo.cpus.push_back(cpu);
  }
  topo.num_cores = static_cast<int>(topo.cpus.size());
  return topo;
}

HostTopology DiscoverHostTopology(const std::string& sysfs_root,
                                  const std::vector<int>& allowed) {
  std::vector<RawCpu> raw;
  for (const int os_cpu : allowed) {
    const std::string topo_dir =
        sysfs_root + "/cpu/cpu" + std::to_string(os_cpu) + "/topology/";
    RawCpu cpu;
    cpu.os_cpu = os_cpu;
    // An allowed cpu without readable topology files (offline, or no sysfs)
    // is dropped; if that leaves nothing, the flat fallback below covers the
    // full allowed set instead.
    if (!ReadIntFile(topo_dir + "physical_package_id", &cpu.package_id) ||
        !ReadIntFile(topo_dir + "core_id", &cpu.core_id)) {
      continue;
    }
    raw.push_back(cpu);
  }
  if (raw.empty()) {
    return FlatHostTopology(allowed);
  }

  // NUMA nodes: node<N>/cpulist claims cpus for node N. Nodes are optional
  // (missing directory — some containers mount no /sys/devices/system/node);
  // unclaimed cpus inherit their package as the memory node.
  std::map<int, int> node_of_os_cpu;
  for (int node = 0; node < 4096; ++node) {
    std::string text;
    if (!ReadFileTrimmed(sysfs_root + "/node/node" + std::to_string(node) + "/cpulist",
                         &text)) {
      // Node ids are contiguous from 0 in practice; stop at the first gap
      // once at least one node was seen, but probe node0 vs node1 gaps
      // conservatively by continuing only from 0.
      if (node > 0) {
        break;
      }
      continue;
    }
    for (const int cpu : ParseCpuList(text)) {
      node_of_os_cpu[cpu] = node;
    }
  }

  // Dense renumbering. Kernel package/node ids are arbitrary (and sparse
  // under cpusets); cluster indices handed to the hierarchical locks must be
  // dense [0, n).
  std::set<int> packages;
  for (const RawCpu& cpu : raw) {
    packages.insert(cpu.package_id);
  }
  std::map<int, int> dense_package;
  for (const int id : packages) {
    dense_package[id] = static_cast<int>(dense_package.size());
  }

  std::map<std::pair<int, int>, int> dense_core;  // (package, core_id) -> core
  std::map<int, int> dense_node;
  HostTopology topo;
  topo.source = "sysfs";
  topo.discovered = true;
  for (const RawCpu& cpu : raw) {
    HostCpu out;
    out.os_cpu = cpu.os_cpu;
    out.socket = dense_package.at(cpu.package_id);
    const auto core_key = std::make_pair(cpu.package_id, cpu.core_id);
    const auto core_it = dense_core.find(core_key);
    if (core_it == dense_core.end()) {
      out.core = static_cast<int>(dense_core.size());
      dense_core.emplace(core_key, out.core);
    } else {
      out.core = core_it->second;
    }
    const auto node_it = node_of_os_cpu.find(cpu.os_cpu);
    const int raw_node = node_it == node_of_os_cpu.end() ? -cpu.package_id - 1
                                                         : node_it->second;
    const auto dense_it = dense_node.find(raw_node);
    if (dense_it == dense_node.end()) {
      out.node = static_cast<int>(dense_node.size());
      dense_node.emplace(raw_node, out.node);
    } else {
      out.node = dense_it->second;
    }
    topo.cpus.push_back(out);
  }

  // Dense CpuId order: socket-major, then core, then kernel number — the
  // kernel number tiebreak doubles as the SMT rank order (sibling strands
  // are enumerated in kernel order).
  std::sort(topo.cpus.begin(), topo.cpus.end(), [](const HostCpu& a, const HostCpu& b) {
    return std::make_tuple(a.socket, a.core, a.os_cpu) <
           std::make_tuple(b.socket, b.core, b.os_cpu);
  });
  std::map<int, int> strands_seen;  // core -> strands assigned so far
  for (HostCpu& cpu : topo.cpus) {
    cpu.smt = strands_seen[cpu.core]++;
    topo.max_smt = std::max(topo.max_smt, cpu.smt + 1);
  }
  topo.num_sockets = static_cast<int>(packages.size());
  topo.num_cores = static_cast<int>(dense_core.size());
  topo.num_nodes = static_cast<int>(dense_node.size());
  return topo;
}

HostTopology DiscoverHostTopology() {
  const char* flat = std::getenv("SSYNC_FLAT_TOPOLOGY");
  if (flat != nullptr && flat[0] != '\0' && std::string(flat) != "0") {
    return FlatHostTopology(AllowedCpus());
  }
  return DiscoverHostTopology("/sys/devices/system", AllowedCpus());
}

PlatformSpec BuildNativeSpec(const HostTopology& topo, int max_cpus) {
  PlatformSpec s;
  s.kind = PlatformKind::kNative;
  s.name = "native";
  s.processors = "host CPU";
  s.interconnect = "host";
  s.memory = "host";
  // One "cycle" on the native backend is one nanosecond of wall time:
  // durations given in cycles convert 1:1, and MopsPerSec at 1.0 GHz turns
  // ops-per-nanosecond into the same Mops/s unit the simulator reports.
  s.ghz = 1.0;

  const int allowed = static_cast<int>(topo.cpus.size());
  s.host_allowed_cpus = allowed;
  s.topology_source = topo.source;
  s.num_cpus = std::clamp(allowed, 1, max_cpus);
  if (allowed > max_cpus) {
    // Once per process: a 300-cpu host silently measuring 256 workers would
    // make cross-machine numbers incomparable without a trace.
    static std::once_flag warned;
    std::call_once(warned, [&] {
      std::fprintf(stderr,
                   "ssync: host has %d allowed cpus but the native worker cap is %d; "
                   "measuring the first %d (see host_allowed_cpus in JSON metadata)\n",
                   allowed, max_cpus, max_cpus);
    });
  }

  s.socket_of_cpu.resize(s.num_cpus);
  s.core_of_cpu.resize(s.num_cpus);
  s.node_of_cpu.resize(s.num_cpus);
  s.smt_of_cpu.resize(s.num_cpus);
  s.os_cpu.resize(s.num_cpus);
  std::set<int> sockets;
  std::set<int> cores;
  int max_smt = 1;
  for (int i = 0; i < s.num_cpus; ++i) {
    const HostCpu& cpu = topo.cpus[i];
    s.socket_of_cpu[i] = cpu.socket;
    s.core_of_cpu[i] = cpu.core;
    s.node_of_cpu[i] = cpu.node;
    s.smt_of_cpu[i] = cpu.smt;
    s.os_cpu[i] = cpu.os_cpu;
    sockets.insert(cpu.socket);
    cores.insert(cpu.core);
    max_smt = std::max(max_smt, cpu.smt + 1);
  }
  // The arithmetic geometry fields are kept coherent for consumers that
  // reason about shape (sweeps, LocksForPlatform) — the per-cpu maps above
  // are authoritative for SocketOf/CoreOf/MemNodeOf.
  s.num_sockets = std::max(1, static_cast<int>(sockets.size()));
  s.cpus_per_core = max_smt;
  s.cores_per_socket = std::max(
      1, (static_cast<int>(cores.size()) + s.num_sockets - 1) / s.num_sockets);
  return s;
}

const char* ToString(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kNone:
      return "none";
    case PlacementPolicy::kFill:
      return "fill";
    case PlacementPolicy::kScatter:
      return "scatter";
    case PlacementPolicy::kSmtPair:
      return "smt-pair";
  }
  return "?";
}

bool PlacementFromString(const std::string& name, PlacementPolicy* out) {
  if (name == "none") {
    *out = PlacementPolicy::kNone;
  } else if (name == "fill") {
    *out = PlacementPolicy::kFill;
  } else if (name == "scatter") {
    *out = PlacementPolicy::kScatter;
  } else if (name == "smt-pair") {
    *out = PlacementPolicy::kSmtPair;
  } else {
    return false;
  }
  return true;
}

const std::vector<std::string>& PlacementNames() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"none", "fill", "scatter", "smt-pair"};
  return *names;
}

std::vector<CpuId> PlacementCpus(const PlatformSpec& spec, PlacementPolicy policy,
                                 int threads) {
  SSYNC_CHECK_GT(threads, 0);
  const int n = spec.num_cpus;
  std::vector<CpuId> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    order[i] = i;
  }
  switch (policy) {
    case PlacementPolicy::kNone:
      break;  // identity: the runtime leaves threads unpinned
    case PlacementPolicy::kFill:
      // Socket-major; within a socket one strand per core first, so SMT
      // sharing starts only once the socket's cores are exhausted.
      std::stable_sort(order.begin(), order.end(), [&](CpuId a, CpuId b) {
        return std::make_tuple(spec.SocketOf(a), spec.SmtOf(a), spec.CoreOf(a)) <
               std::make_tuple(spec.SocketOf(b), spec.SmtOf(b), spec.CoreOf(b));
      });
      break;
    case PlacementPolicy::kSmtPair:
      // Core-major: a core's hyperthread siblings come consecutively.
      std::stable_sort(order.begin(), order.end(), [&](CpuId a, CpuId b) {
        return std::make_tuple(spec.SocketOf(a), spec.CoreOf(a), spec.SmtOf(a)) <
               std::make_tuple(spec.SocketOf(b), spec.CoreOf(b), spec.SmtOf(b));
      });
      break;
    case PlacementPolicy::kScatter: {
      // Round-robin across sockets, consuming each socket in fill order.
      std::vector<std::vector<CpuId>> per_socket;
      std::vector<CpuId> fill = PlacementCpus(spec, PlacementPolicy::kFill, n);
      for (const CpuId cpu : fill) {
        const int socket = spec.SocketOf(cpu);
        if (socket >= static_cast<int>(per_socket.size())) {
          per_socket.resize(socket + 1);
        }
        per_socket[socket].push_back(cpu);
      }
      order.clear();
      std::vector<std::size_t> next(per_socket.size(), 0);
      while (static_cast<int>(order.size()) < n) {
        for (std::size_t s = 0; s < per_socket.size(); ++s) {
          if (next[s] < per_socket[s].size()) {
            order.push_back(per_socket[s][next[s]++]);
          }
        }
      }
      break;
    }
  }
  std::vector<CpuId> cpus(static_cast<std::size_t>(threads));
  for (int tid = 0; tid < threads; ++tid) {
    cpus[tid] = order[tid % n];  // oversubscription wraps
  }
  return cpus;
}

bool PinThreadToOsCpu(int os_cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (os_cpu < 0 || os_cpu >= CPU_SETSIZE) {
    return false;
  }
  CPU_SET(os_cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)os_cpu;
  return false;
#endif
}

}  // namespace ssync
