// Host topology discovery and thread-placement policies for the native
// backend.
//
// The paper's central claim is that synchronization scalability is chiefly a
// property of hardware locality (Sections 4-5): crossing sockets, sharing SMT
// siblings, and directory hops dominate lock behavior. The simulated machines
// carry their geometry in PlatformSpec by construction; this module gives the
// *host* the same treatment:
//
//   * DiscoverHostTopology() parses the real machine geometry from sysfs
//     (/sys/devices/system/cpu/*/topology, /sys/devices/system/node),
//     intersected with the process's allowed-cpu mask (sched_getaffinity), so
//     runs under taskset/cpuset-restricted containers see exactly the cpus
//     they may use. When sysfs is absent (non-Linux, stripped containers) or
//     SSYNC_FLAT_TOPOLOGY=1 is set, it falls back to the historical flat
//     single-socket geometry.
//   * BuildNativeSpec() turns a HostTopology into the PlatformSpec that
//     MakeNativeHost() returns, filling the explicit per-cpu maps
//     (socket_of_cpu, core_of_cpu, ...) that SocketOf/MemNodeOf consult on
//     the native backend — so LockTopology::FromSpec gives the hierarchical
//     locks (HCLH, HTICKET, COHORT) true cluster maps on real hardware.
//   * PlacementPolicy + PlacementCpus() define where worker threads land:
//     `fill` packs a socket before moving on (the paper's Section 5.4
//     policy), `scatter` round-robins across sockets, `smt-pair` packs
//     hyperthread siblings first. NativeRuntime, the --placement experiment
//     parameter, and ssyncd's worker pinning all consume this one function.
#ifndef SRC_PLATFORM_TOPOLOGY_H_
#define SRC_PLATFORM_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/platform/spec.h"

namespace ssync {

// One logical cpu of the host, after the allowed-mask intersection. Ids are
// dense re-numberings (socket/core/node in [0, n)); os_cpu keeps the kernel's
// number, which is sparse under a restricted cpuset.
struct HostCpu {
  int os_cpu = 0;  // kernel cpu number (what sched_setaffinity wants)
  int socket = 0;  // dense physical-package index
  int core = 0;    // dense global core index (not per-socket)
  int node = 0;    // dense NUMA-node index
  int smt = 0;     // rank among the core's hardware threads (0 = first)
};

struct HostTopology {
  // Sorted socket-major, then core, then smt rank — so index i is the dense
  // CpuId the native PlatformSpec and runtime use.
  std::vector<HostCpu> cpus;
  int num_sockets = 1;
  int num_cores = 1;
  int num_nodes = 1;
  int max_smt = 1;          // widest hardware-thread sharing of any core
  bool discovered = false;  // false: the flat fallback geometry
  std::string source;       // "sysfs" | "flat"
};

// The cpus this process may run on, in kernel numbering: sched_getaffinity
// on Linux, 0..hardware_concurrency-1 elsewhere. Never empty.
std::vector<int> AllowedCpus();

// Parses `sysfs_root` (layout of /sys/devices/system: cpu/cpu<N>/topology/*,
// node/node<N>/cpulist), keeping only cpus in `allowed`. Returns the flat
// fallback (discovered = false) when the tree is absent or no allowed cpu has
// readable topology files. Separated from the real-sysfs entry point so the
// parser is testable against canned fixture trees.
HostTopology DiscoverHostTopology(const std::string& sysfs_root,
                                  const std::vector<int>& allowed);

// The real host: /sys/devices/system intersected with AllowedCpus().
// SSYNC_FLAT_TOPOLOGY=1 forces the flat fallback (CI determinism).
HostTopology DiscoverHostTopology();

// A flat single-socket geometry over `allowed` (the pre-discovery behavior;
// also what the fallback path returns).
HostTopology FlatHostTopology(const std::vector<int>& allowed);

// The PlatformSpec for a discovered host: kind = kNative, ghz = 1.0 (one
// "cycle" is one nanosecond), per-cpu maps filled from `topo`, cpu count
// clamped to `max_cpus` (kMaxNativeThreads at the MakeNativeHost call site;
// the clamp is warned about once and recorded in spec.host_allowed_cpus).
PlatformSpec BuildNativeSpec(const HostTopology& topo, int max_cpus);

// --- Thread placement ------------------------------------------------------

// Where the native backend puts worker threads (paper Section 5.4):
//   kNone:    no pinning; the OS scheduler decides (historical behavior).
//   kFill:    pack a socket before moving to the next, one hardware thread
//             per core first — the paper's multi-socket placement.
//   kScatter: round-robin across sockets — maximizes cross-socket traffic,
//             the contrast case of the packed-vs-scattered divergence.
//   kSmtPair: hyperthread siblings first — packs a core's strands before
//             the next core (socket-major).
enum class PlacementPolicy { kNone, kFill, kScatter, kSmtPair };

const char* ToString(PlacementPolicy policy);
bool PlacementFromString(const std::string& name, PlacementPolicy* out);
// Accepted --placement spellings, in declaration order ("none", "fill",
// "scatter", "smt-pair"). CLI surfaces validate against it.
const std::vector<std::string>& PlacementNames();

// The dense CpuIds for `threads` workers placed under `policy` on `spec`:
// thread tid runs on the returned [tid]. Works for any spec (the simulated
// machines use arithmetic geometry; the native spec uses its discovered
// maps). Threads beyond spec.num_cpus wrap (oversubscription is tolerated on
// the native backend). kNone yields the identity order.
std::vector<CpuId> PlacementCpus(const PlatformSpec& spec, PlacementPolicy policy,
                                 int threads);

// Pins the calling thread to one kernel cpu. Best effort: returns false when
// unsupported (non-Linux) or rejected (cpu outside the allowed mask).
bool PinThreadToOsCpu(int os_cpu);

}  // namespace ssync

#endif  // SRC_PLATFORM_TOPOLOGY_H_
