#include "src/platform/spec.h"

#include <algorithm>
#include <cmath>

#include "src/platform/topology.h"
#include "src/util/check.h"

namespace ssync {
namespace {

// Builds the hop/link matrices for a multi-socket machine from an adjacency
// predicate: adjacent sockets are 1 hop, everything else 2 (both studied
// interconnects have diameter 2, Section 3).
template <typename AdjacentFn>
void BuildMatrices(PlatformSpec& spec, AdjacentFn adjacent, Cycles link_1hop,
                   Cycles link_2hop, Cycles link_special, Cycles special_cost) {
  const int n = spec.num_sockets;
  spec.hops.assign(static_cast<std::size_t>(n) * n, 0);
  spec.link_cost.assign(static_cast<std::size_t>(n) * n, 0);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) {
        continue;
      }
      const int kind = adjacent(a, b);  // 0: special 1-hop, 1: 1-hop, 2: 2-hop
      spec.hops[a * n + b] = kind == 2 ? 2 : 1;
      spec.link_cost[a * n + b] =
          kind == 0 ? special_cost : (kind == 1 ? link_1hop : link_2hop);
    }
  }
  (void)link_special;
}

}  // namespace

Cycles AtomicCosts::Get(AccessType t) const {
  switch (t) {
    case AccessType::kCas:
      return cas;
    case AccessType::kFai:
      return fai;
    case AccessType::kTas:
      return tas;
    case AccessType::kSwap:
      return swap;
    default:
      SSYNC_CHECK(false);
  }
}

int PlatformSpec::MeshHops(CpuId a, CpuId b) const {
  SSYNC_DCHECK(mesh_dim > 0);
  return std::abs(MeshX(a) - MeshX(b)) + std::abs(MeshY(a) - MeshY(b));
}

CpuId PlatformSpec::CpuForThread(int thread_index) const {
  if (kind == PlatformKind::kNative) {
    // The native backend tolerates oversubscription (the OS schedules, and
    // NativeMem::Pause yields); wrap instead of rejecting.
    return thread_index % num_cpus;
  }
  SSYNC_CHECK_LT(thread_index, num_cpus);
  if (kind == PlatformKind::kNiagara) {
    // Spread threads across the 8 physical cores round-robin (Section 5.4):
    // thread i runs on core i%8, hardware strand i/8.
    const int cores = num_cpus / cpus_per_core;
    return (thread_index % cores) * cpus_per_core + thread_index / cores;
  }
  // Multi-sockets and Tilera: fill a socket/tile row at a time; cpu ids are
  // already socket-major.
  return thread_index;
}

NodeId PlatformSpec::MemNodeOf(CpuId cpu) const {
  if (kind == PlatformKind::kTilera) {
    return cpu;  // home slice == tile
  }
  if (!node_of_cpu.empty()) {
    return node_of_cpu[cpu];  // native: the discovered NUMA node
  }
  return SocketOf(cpu);
}

// ---------------------------------------------------------------------------
// Opteron: 48-core AMD Magny-Cours. 4 MCMs x 2 dies x 6 cores. MOESI with an
// incomplete probe-filter directory in the LLC; non-inclusive caches.
// Die d = (mcm = d/2, side = d%2). Dies in one MCM are directly coupled; dies
// of different MCMs with the same side share a direct HT link; opposite sides
// are 2 hops apart (Figure 2a approximated).
// ---------------------------------------------------------------------------
PlatformSpec MakeOpteron() {
  PlatformSpec s;
  s.kind = PlatformKind::kOpteron;
  s.name = "Opteron";
  s.processors = "4x AMD Opteron 6172 (Magny-Cours), 48 cores, 8 memory nodes";
  s.interconnect = "6.4 GT/s HyperTransport 3.0";
  s.memory = "128 GiB DDR3-1333";
  s.ghz = 2.1;
  s.num_cpus = 48;
  s.cpus_per_core = 1;
  s.cores_per_socket = 6;  // per die
  s.num_sockets = 8;       // dies
  s.l1_lines = 64 * 1024 / 64;
  s.l2_lines = 512 * 1024 / 64;
  s.llc_lines = 6 * 1024 * 1024 / 64;
  // Table 3: 3 / 15 / 40 / 136 cycles.
  s.l1_lat = 3;
  s.l2_lat = 15;
  s.llc_lat = 40;
  s.ram_lat = 136;
  // One-way link legs calibrated against Table 2 loads (81/161/172/252):
  // load = dir_lookup + probe + 2 legs.
  BuildMatrices(
      s,
      [](int a, int b) {
        if (a / 2 == b / 2) {
          return 0;  // same MCM: tightly coupled
        }
        return a % 2 == b % 2 ? 1 : 2;
      },
      /*link_1hop=*/46, /*link_2hop=*/86, 0, /*mcm=*/40);
  s.dir_lookup = 40;       // Table 3 LLC (directory lives in the LLC)
  s.probe_modified = 41;   // 40+41 = 81 = Table 2 load M same-die
  s.probe_exclusive = 43;  // 83 = load E/O same-die
  s.probe_shared = 43;     // 83 = load S same-die
  s.mem_access = 96;       // 40+96 = 136 = Table 3 RAM
  s.ram_remote_extra = 20; // load I one/two hops: 237/247/327
  s.store_upgrade = 43;    // store M/E same-die: 83
  s.store_remote_extra = 0;
  s.broadcast_cost = 163;  // store S same-die: 83+163 = 246 (Table 2: 246)
  s.atomic_extra = 27;     // atomic M same-die: 110 (Table 2)
  s.atomic_local = 20;     // Section 5.4: ~20 cycles single-thread
  s.fence_cost = 30;
  s.port_service = 10;  // HT probe-filter lookup + link occupancy per request
  s.incomplete_directory = true;  // probe filter tracks the owner only
  s.has_owned_state = true;       // MOESI
  return s;
}

// ---------------------------------------------------------------------------
// Xeon: 80-core 8-socket Westmere-EX. MESIF, broadcast snoop across sockets,
// inclusive LLC with core-valid bits inside each socket. Twisted hypercube:
// sockets differing in one of bits {1,2,4} are adjacent, diameter 2.
// ---------------------------------------------------------------------------
PlatformSpec MakeXeon() {
  PlatformSpec s;
  s.kind = PlatformKind::kXeon;
  s.name = "Xeon";
  s.processors = "8x Intel Xeon E7-8867L (Westmere-EX), 80 cores";
  s.interconnect = "6.4 GT/s QuickPath Interconnect";
  s.memory = "192 GiB Sync DDR3-1067";
  s.ghz = 2.13;
  s.num_cpus = 80;
  s.cpus_per_core = 1;
  s.cores_per_socket = 10;
  s.num_sockets = 8;
  s.l1_lines = 32 * 1024 / 64;
  s.l2_lines = 256 * 1024 / 64;
  s.llc_lines = 30 * 1024 * 1024 / 64;
  // Table 3: 5 / 11 / 44 / 355.
  s.l1_lat = 5;
  s.l2_lat = 11;
  s.llc_lat = 44;
  s.ram_lat = 355;
  // Legs calibrated against Table 2 (load M: 109/289/400).
  BuildMatrices(
      s,
      [](int a, int b) {
        const int x = a ^ b;
        return (x == 1 || x == 2 || x == 4) ? 1 : 2;
      },
      /*link_1hop=*/68, /*link_2hop=*/123, 0, 0);
  s.dir_lookup = 44;       // inclusive LLC lookup (Table 3 LLC)
  s.probe_modified = 65;   // 44+65 = 109 = load M same-die
  s.probe_exclusive = 48;  // 92 = load E same-die
  s.probe_shared = 0;      // 44 = load S same-die (LLC serves directly)
  s.mem_access = 311;      // 44+311 = 355 = Table 3 RAM
  s.ram_remote_extra = 0;
  s.store_upgrade = 71;    // store within socket: 115 (Table 2)
  s.store_remote_extra = 69;  // store M one hop: 115+69+2*68 = 320
  s.broadcast_cost = 0;
  s.atomic_extra = 5;      // atomic within socket: 120 (Table 2)
  s.atomic_local = 20;
  s.fence_cost = 30;
  s.port_service = 34;  // LLC snoop-pipeline occupancy per broadcast
  s.inclusive_llc = true;
  s.has_forward_state = true;  // MESIF
  return s;
}

// ---------------------------------------------------------------------------
// Niagara: Sun UltraSPARC-T2, 8 cores x 8 hardware threads, uniform crossbar
// to a shared LLC, write-through L1s, duplicate-tag (exact) directory.
// ---------------------------------------------------------------------------
PlatformSpec MakeNiagara() {
  PlatformSpec s;
  s.kind = PlatformKind::kNiagara;
  s.name = "Niagara";
  s.processors = "SUN UltraSPARC-T2, 8 cores / 64 hardware threads";
  s.interconnect = "Niagara2 crossbar";
  s.memory = "32 GiB FB-DIMM-400";
  s.ghz = 1.2;
  s.num_cpus = 64;
  s.cpus_per_core = 8;  // 8 strands share a core and its L1
  s.cores_per_socket = 8;
  s.num_sockets = 1;
  s.l1_lines = 8 * 1024 / 64;  // 8 KiB L1D shared by the core's strands
  s.l2_lines = 0;              // no private L2
  s.llc_lines = 4 * 1024 * 1024 / 64;
  // Table 3: 3 / - / 24 / 176.
  s.l1_lat = 3;
  s.l2_lat = 0;
  s.llc_lat = 24;  // also the store & cross-core load latency (Table 2)
  s.ram_lat = 176;
  // Table 2 atomic rows (same core): CAS 71, FAI 108 (CAS-based), TAS 64
  // (native, efficient), SWAP 95 (CAS-based).
  s.atomic_op = AtomicCosts{70, 103, 60, 92};
  s.atomic_local = 70;  // atomics always execute at the LLC
  s.fence_cost = 10;
  s.port_service = 0;   // banked crossbar LLC: no shared-port bottleneck
  s.write_through_l1 = true;
  return s;
}

// ---------------------------------------------------------------------------
// Tilera: TILE-Gx36, 6x6 mesh. Distributed LLC: every line has a home tile
// whose L2 slice is its LLC; distance-dependent latency; exact directory at
// the home; hardware message passing over the iMesh.
// ---------------------------------------------------------------------------
PlatformSpec MakeTilera() {
  PlatformSpec s;
  s.kind = PlatformKind::kTilera;
  s.name = "Tilera";
  s.processors = "Tilera TILE-Gx36, 36 tiles, iMesh NoC";
  s.interconnect = "Tilera iMesh";
  s.memory = "16 GiB DDR3-800";
  s.ghz = 1.2;
  s.num_cpus = 36;
  s.cpus_per_core = 1;
  s.cores_per_socket = 36;
  s.num_sockets = 1;
  s.mesh_dim = 6;
  s.l1_lines = 32 * 1024 / 64;
  s.l2_lines = 0;
  s.llc_lines = 256 * 1024 / 64;  // per home slice
  // Table 3: 2 / 11 / 45 / 118. (LLC = a 1-hop remote slice.)
  s.l1_lat = 2;
  s.l2_lat = 11;
  s.llc_lat = 45;
  s.ram_lat = 118;
  // Table 2 Tilera: loads 45 one hop .. 65 max (10) hops => base 43 + 2.2/hop.
  s.slice_local = 11;    // own home slice == local L2
  s.probe_owner = 13;    // 11+13 = 24 = "other core" column
  s.remote_base = 43;
  s.per_hop_x10 = 22;
  s.store_extra = 12;          // store one hop: 57 = 45+12
  s.store_shared_extra = 29;   // store shared one hop: 86
  s.ram_per_hop_x10 = 24;      // load I: 118 @ 1 hop .. 162 @ max hops
  // Atomics execute at the home tile; FAI has a fast hardware path
  // (Table 2: one hop C/F/T/S = 77/51/70/63).
  s.atomic_op = AtomicCosts{32, 6, 25, 18};
  s.atomic_shared_extra = AtomicCosts{47, 31, 51, 32};
  s.atomic_local = 43;  // executed at home even when local
  s.fence_cost = 12;
  s.port_service = 2;   // home-slice directory occupancy per request
  // Hardware MP (Figure 9): one-way 61 @ 1 hop, 64 @ max hops.
  s.has_hw_mp = true;
  s.mp_base = 60;
  s.mp_per_hop_x10 = 4;
  return s;
}

// ---------------------------------------------------------------------------
// Section 8 small multi-sockets. Cross-socket/intra-socket coherence latency
// ratios: ~1.6x on the 2-socket Opteron, ~2.7x on the 2-socket Xeon.
// ---------------------------------------------------------------------------
PlatformSpec MakeOpteron2() {
  PlatformSpec s = MakeOpteron();
  s.kind = PlatformKind::kOpteron2;
  s.name = "Opteron2";
  s.processors = "2x AMD Opteron 2384, 8 cores";
  s.num_cpus = 8;
  s.cores_per_socket = 4;
  s.num_sockets = 2;
  BuildMatrices(s, [](int, int) { return 1; }, /*link_1hop=*/25, 0, 0, 0);
  s.broadcast_cost = 60;  // only two nodes to invalidate
  return s;
}

PlatformSpec MakeXeon2() {
  PlatformSpec s = MakeXeon();
  s.kind = PlatformKind::kXeon2;
  s.name = "Xeon2";
  s.processors = "2x Intel Xeon X5660, 12 cores";
  s.num_cpus = 12;
  s.cores_per_socket = 6;
  s.num_sockets = 2;
  BuildMatrices(s, [](int, int) { return 1; }, /*link_1hop=*/75, 0, 0, 0);
  return s;
}

PlatformSpec MakeNativeHost() {
  // Real geometry from sysfs + the allowed-cpu mask (flat fallback where
  // unavailable), clamped to the native runtime's worker cap
  // (kMaxNativeThreads in src/core/runtime_native.h — the platform layer
  // cannot include it, so the cap is restated here).
  return BuildNativeSpec(DiscoverHostTopology(), /*max_cpus=*/256);
}

PlatformSpec MakePlatform(PlatformKind kind) {
  switch (kind) {
    case PlatformKind::kOpteron:
      return MakeOpteron();
    case PlatformKind::kXeon:
      return MakeXeon();
    case PlatformKind::kNiagara:
      return MakeNiagara();
    case PlatformKind::kTilera:
      return MakeTilera();
    case PlatformKind::kOpteron2:
      return MakeOpteron2();
    case PlatformKind::kXeon2:
      return MakeXeon2();
    case PlatformKind::kNative:
      return MakeNativeHost();
  }
  SSYNC_CHECK(false);
}

PlatformSpec MakePlatformByName(const std::string& name) {
  if (name == "opteron") {
    return MakeOpteron();
  }
  if (name == "xeon") {
    return MakeXeon();
  }
  if (name == "niagara") {
    return MakeNiagara();
  }
  if (name == "tilera") {
    return MakeTilera();
  }
  if (name == "opteron2") {
    return MakeOpteron2();
  }
  if (name == "xeon2") {
    return MakeXeon2();
  }
  if (name == "native") {
    return MakeNativeHost();
  }
  std::fprintf(stderr,
               "unknown platform: %s (use opteron|xeon|niagara|tilera|opteron2|xeon2|native)\n",
               name.c_str());
  std::abort();
}

std::vector<PlatformKind> MainPlatforms() {
  return {PlatformKind::kOpteron, PlatformKind::kXeon, PlatformKind::kNiagara,
          PlatformKind::kTilera};
}

const std::vector<std::string>& SimPlatformNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "opteron", "xeon", "niagara", "tilera", "opteron2", "xeon2"};
  return *names;
}

std::vector<DistanceCase> DistanceCases(const PlatformSpec& spec) {
  switch (spec.kind) {
    case PlatformKind::kOpteron:
      // cpu 0 is on die 0 (MCM 0, side 0): die 1 = same MCM, die 2 = same
      // side of MCM 1 (one hop), die 3 = opposite side (two hops).
      return {{"same die", 1}, {"same mcm", 6}, {"one hop", 12}, {"two hops", 18}};
    case PlatformKind::kXeon:
      return {{"same die", 1}, {"one hop", 10}, {"two hops", 30}};
    case PlatformKind::kNiagara:
      return {{"same core", 1}, {"other core", 8}};
    case PlatformKind::kTilera:
      return {{"one hop", 1}, {"max hops", 35}};
    case PlatformKind::kOpteron2:
    case PlatformKind::kXeon2:
      return {{"same die", 1}, {"one hop", spec.cores_per_socket}};
    case PlatformKind::kNative:
      // The host's latency classes are not calibrated (only its geometry is
      // discovered); no distance cases are generated.
      return {};
  }
  SSYNC_CHECK(false);
}

}  // namespace ssync
