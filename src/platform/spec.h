// Platform descriptions for the four machines of the paper (Table 1) plus the
// two small 2-socket machines discussed in Section 8.
//
// A PlatformSpec bundles: the machine geometry (cpus, cores, sockets, cache
// sizes), the interconnect (hop and one-way link-cost matrices, or mesh
// dimensions), and the coherence-protocol latency constants. The constants are
// calibrated so that the simulated ccbench reproduces the paper's Tables 2 and
// 3; each constant's comment cites the paper value it was derived from.
#ifndef SRC_PLATFORM_SPEC_H_
#define SRC_PLATFORM_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ccsim/types.h"

namespace ssync {

enum class PlatformKind : std::uint8_t {
  kOpteron,   // 4-socket (8-die) AMD Magny-Cours: MOESI, incomplete directory
  kXeon,      // 8-socket Intel Westmere-EX: MESIF, broadcast snoop, inclusive LLC
  kNiagara,   // Sun UltraSPARC-T2: uniform crossbar, duplicate-tag directory
  kTilera,    // Tilera TILE-Gx36: 6x6 mesh, distributed directory, hardware MP
  kOpteron2,  // 2-socket AMD Opteron 2384 (Section 8)
  kXeon2,     // 2-socket Intel Xeon X5660 (Section 8)
  kNative,    // the host machine (NativeRuntime backend; never simulated)
};

// Per-atomic-op latency components, indexed by AccessType kCas..kSwap.
struct AtomicCosts {
  Cycles cas = 0;
  Cycles fai = 0;
  Cycles tas = 0;
  Cycles swap = 0;

  Cycles Get(AccessType t) const;
};

struct PlatformSpec {
  PlatformKind kind = PlatformKind::kOpteron;
  std::string name;

  // Table 1 metadata (documentation / table1 bench).
  std::string processors;
  std::string interconnect;
  std::string memory;

  double ghz = 2.0;

  // Geometry.
  int num_cpus = 0;
  int cpus_per_core = 1;     // hardware threads sharing an L1 (Niagara: 8)
  int cores_per_socket = 1;  // Opteron: per die
  int num_sockets = 1;       // Opteron: dies (8)

  // Cache capacities in lines (64 B each).
  std::size_t l1_lines = 0;
  std::size_t l2_lines = 0;   // 0: no private L2 (Niagara)
  std::size_t llc_lines = 0;  // per socket; Tilera: per home slice

  // Local latencies (paper Table 3).
  Cycles l1_lat = 0;
  Cycles l2_lat = 0;
  Cycles llc_lat = 0;
  Cycles ram_lat = 0;

  // Interconnect (multi-socket platforms): socket x socket matrices.
  std::vector<int> hops;         // hop count (0 on diagonal)
  std::vector<Cycles> link_cost; // one-way link traversal cost in cycles

  // Mesh (Tilera).
  int mesh_dim = 0;

  // --- Multi-socket protocol constants (MultiSocketModel) ---
  Cycles dir_lookup = 0;          // home directory / LLC coherence lookup
  Cycles probe_modified = 0;      // pull data out of a peer cache holding M
  Cycles probe_exclusive = 0;     // ... holding E
  Cycles probe_shared = 0;        // serve a shared line (LLC/memory at home)
  Cycles mem_access = 0;          // DRAM access beyond the directory lookup
  Cycles ram_remote_extra = 0;    // extra cost of a remote DRAM fill
  Cycles store_upgrade = 0;       // invalidate in-socket sharers on a store
  Cycles store_remote_extra = 0;  // extra cost of a cross-socket RFO
  Cycles broadcast_cost = 0;      // Opteron: system-wide invalidation broadcast
  Cycles atomic_extra = 0;        // atomic op cost over the store path
  Cycles atomic_local = 0;        // atomic on a line already M in own L1

  // --- Single-socket constants ---
  AtomicCosts atomic_op;           // Niagara/Tilera per-op costs
  AtomicCosts atomic_shared_extra; // Tilera: extra when the line had sharers
  Cycles slice_local = 0;          // Tilera: own home-slice access
  Cycles probe_owner = 0;          // Tilera: last writer's copy probe
  Cycles remote_base = 0;          // Tilera: remote home-slice base cost
  Cycles per_hop_x10 = 0;          // Tilera: cycles*10 per mesh hop
  Cycles store_extra = 0;          // Tilera: store over load at home slice
  Cycles store_shared_extra = 0;   // Tilera: invalidating sharers on store
  Cycles ram_per_hop_x10 = 0;      // Tilera: DRAM path distance sensitivity

  // Hardware message passing (Tilera iMesh).
  bool has_hw_mp = false;
  Cycles mp_base = 0;
  Cycles mp_per_hop_x10 = 0;

  // Fences (memory barriers used by lock implementations).
  Cycles fence_cost = 0;

  // Coherence-port service time: how long a node's coherence machinery
  // (Xeon LLC snoop pipeline, Opteron probe filter + HT link, Tilera
  // home-slice directory) is occupied per request it handles. Concurrent
  // requests queue behind it — the interconnect saturation that collapses
  // multi-socket scalability under heavy miss traffic (Figures 3, 8, 11).
  // Zero disables the mechanism (the Niagara crossbar provides full
  // bandwidth to its banked, uniform LLC).
  Cycles port_service = 0;

  bool write_through_l1 = false;
  bool inclusive_llc = false;
  bool incomplete_directory = false;  // Opteron probe filter: owner only
  bool has_owned_state = false;       // MOESI
  bool has_forward_state = false;     // MESIF

  // --- Native host topology (src/platform/topology.h) ---
  // Explicit per-cpu maps discovered from sysfs, indexed by dense CpuId.
  // Empty on the simulated platforms, whose geometry is regular arithmetic;
  // when filled (the native backend), they are authoritative for
  // CoreOf/SocketOf/SmtOf/MemNodeOf — real machines intersected with a
  // cpuset are irregular (a socket may contribute 6 cpus, another 2), which
  // no cpus_per_core/cores_per_socket arithmetic can express.
  std::vector<int> socket_of_cpu;
  std::vector<int> core_of_cpu;  // dense global core index
  std::vector<int> node_of_cpu;  // dense NUMA-node index
  std::vector<int> smt_of_cpu;   // rank among the core's hardware threads
  // Kernel cpu number backing each dense CpuId (sparse under taskset /
  // container cpusets); what affinity pinning must use. Empty: identity.
  std::vector<int> os_cpu;
  // Native host metadata for experiment JSON: where the geometry came from
  // ("sysfs" | "flat"; empty on simulated platforms), and the allowed-cpu
  // count before the worker-cap clamp (num_cpus < host_allowed_cpus means
  // the host was clamped).
  std::string topology_source;
  int host_allowed_cpus = 0;

  // --- Derived geometry helpers ---
  int CoreOf(CpuId cpu) const {
    return core_of_cpu.empty() ? cpu / cpus_per_core : core_of_cpu[cpu];
  }
  int SocketOf(CpuId cpu) const {
    return socket_of_cpu.empty() ? CoreOf(cpu) / cores_per_socket : socket_of_cpu[cpu];
  }
  // Hardware-thread rank within the cpu's core (0 = first strand).
  int SmtOf(CpuId cpu) const {
    return smt_of_cpu.empty() ? cpu % cpus_per_core : smt_of_cpu[cpu];
  }
  // The kernel cpu number to pin to for a dense CpuId.
  int OsCpuOf(CpuId cpu) const { return os_cpu.empty() ? cpu : os_cpu[cpu]; }
  bool SameCore(CpuId a, CpuId b) const { return CoreOf(a) == CoreOf(b); }
  bool SameSocket(CpuId a, CpuId b) const { return SocketOf(a) == SocketOf(b); }

  int HopsBetween(int socket_a, int socket_b) const {
    return hops[socket_a * num_sockets + socket_b];
  }
  Cycles LinkCost(int socket_a, int socket_b) const {
    return link_cost[socket_a * num_sockets + socket_b];
  }

  // Mesh helpers (Tilera): cpu == tile index, row-major.
  int MeshX(CpuId cpu) const { return cpu % mesh_dim; }
  int MeshY(CpuId cpu) const { return cpu / mesh_dim; }
  int MeshHops(CpuId a, CpuId b) const;

  // The paper's thread-placement policy (Section 5.4): multi-sockets fill a
  // socket before moving to the next; Niagara spreads threads across the 8
  // physical cores round-robin.
  CpuId CpuForThread(int thread_index) const;

  // Memory node of a cpu for first-touch placement. Opteron: die; Xeon:
  // socket; Niagara: the single node; Tilera: the tile (home-slice).
  NodeId MemNodeOf(CpuId cpu) const;
};

// Factory functions for the six studied platforms.
PlatformSpec MakeOpteron();
PlatformSpec MakeXeon();
PlatformSpec MakeNiagara();
PlatformSpec MakeTilera();
PlatformSpec MakeOpteron2();  // Section 8 small multi-socket
PlatformSpec MakeXeon2();     // Section 8 small multi-socket

// The host machine as a PlatformSpec, for experiments running on the native
// backend: the real geometry discovered from sysfs intersected with the
// process's allowed-cpu mask (src/platform/topology.h), with a flat
// single-socket fallback when sysfs is absent or SSYNC_FLAT_TOPOLOGY=1 is
// set. ghz = 1.0 so that one "cycle" is one nanosecond of wall time. Never
// given to a Machine.
PlatformSpec MakeNativeHost();

PlatformSpec MakePlatform(PlatformKind kind);
PlatformSpec MakePlatformByName(const std::string& name);  // "opteron", "xeon", ...

// The four platforms of the main study, in paper order.
std::vector<PlatformKind> MainPlatforms();

// Every simulated-platform name MakePlatformByName accepts (the paper's four
// main machines plus the Section 8 2-socket specs; excludes "native"). The
// canonical list — CLI surfaces validate against it.
const std::vector<std::string>& SimPlatformNames();

// Distance cases for Figure 6 / Figure 9 style sweeps: labelled partner cpus
// for cpu 0, ordered from nearest to farthest.
struct DistanceCase {
  std::string label;
  CpuId partner;
};
std::vector<DistanceCase> DistanceCases(const PlatformSpec& spec);

}  // namespace ssync

#endif  // SRC_PLATFORM_SPEC_H_
