// Generic cohort (hierarchical) lock — the lock-cohorting construction of
// Dice, Marathe & Shavit [14] that the paper's hticket follows (Section 4.1,
// footnote 3).
//
// One local lock per NUMA cluster plus one global lock. A thread first
// acquires its cluster's local lock; if its cluster already holds the global
// lock (a cohort handoff), it owns the critical section immediately. On
// release, if local waiters exist and the handoff budget is not exhausted,
// the global lock is passed within the cluster — keeping the lock data and
// the protected data in the local LLC.
//
// The global lock must be thread-oblivious (releasable by a different thread
// than the acquirer); our TicketLock qualifies because it keeps the holder's
// ticket inside the lock.
#ifndef SRC_LOCKS_COHORT_H_
#define SRC_LOCKS_COHORT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/locks/lock_common.h"
#include "src/locks/mcs.h"
#include "src/locks/ticket.h"

namespace ssync {

// Bounds intra-cluster handoffs so remote clusters are not starved. Exposed
// at namespace scope because the torture suite derives its fairness
// (bounded-bypass) thresholds for the hierarchical locks from it.
inline constexpr int kCohortMaxHandoffs = 64;

template <typename Mem, typename LocalLock>
class CohortLock {
 public:
  static constexpr int kMaxHandoffs = kCohortMaxHandoffs;

  explicit CohortLock(const LockTopology& topo) : topo_(topo), global_(topo) {
    const int clusters = topo.num_clusters();
    locals_.reserve(clusters);
    for (int c = 0; c < clusters; ++c) {
      locals_.push_back(std::make_unique<ClusterState>(topo));
    }
  }

  void Lock() {
    ClusterState& cs = Cluster();
    cs.lock.Lock();
    if (cs.global_held.Load() != 0) {
      return;  // the cohort already owns the global lock
    }
    global_.Lock();
    cs.global_held.Store(1);
  }

  void Unlock() {
    ClusterState& cs = Cluster();
    if (*cs.handoffs < kMaxHandoffs && cs.lock.HasWaiters()) {
      ++*cs.handoffs;
      cs.lock.Unlock();  // pass the global lock within the cluster
      return;
    }
    *cs.handoffs = 0;
    cs.global_held.Store(0);
    global_.Unlock();
    cs.lock.Unlock();
  }

 private:
  struct alignas(kCacheLineSize) ClusterState {
    explicit ClusterState(const LockTopology& topo) : lock(topo) {}
    LocalLock lock;
    typename Mem::template Atomic<std::uint32_t> global_held{0};
    Padded<int> handoffs;
  };

  ClusterState& Cluster() { return *locals_[topo_.cluster_of[Mem::ThreadId()]]; }

  LockTopology topo_;
  TicketLock<Mem> global_;
  std::vector<std::unique_ptr<ClusterState>> locals_;
};

// The generic cohort instantiation benchmarked as COHORT: per-cluster MCS
// queues under the thread-oblivious global ticket lock (C-TKT-MCS in the
// taxonomy of [14]). Complements HCLH (C-TKT-CLH) and HTICKET (C-TKT-TKT),
// covering the third local-queue discipline of the construction.
template <typename Mem>
using CohortMcsLock = CohortLock<Mem, McsLock<Mem>>;

}  // namespace ssync

#endif  // SRC_LOCKS_COHORT_H_
