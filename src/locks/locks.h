// libslock: umbrella header and runtime-dispatch helper.
//
// The lock algorithms are templates; WithLock() instantiates the one named by
// a LockKind and hands it to a generic callable, which is how the benchmark
// harnesses sweep "all locks x all platforms" (Figures 5-8).
#ifndef SRC_LOCKS_LOCKS_H_
#define SRC_LOCKS_LOCKS_H_

#include <memory>
#include <type_traits>

#include "src/locks/array.h"
#include "src/locks/clh.h"
#include "src/locks/cohort.h"
#include "src/locks/hclh.h"
#include "src/locks/hticket.h"
#include "src/locks/lock_common.h"
#include "src/locks/mcs.h"
#include "src/locks/mutex.h"
#include "src/locks/tas.h"
#include "src/locks/ticket.h"
#include "src/locks/ttas.h"

namespace ssync {

namespace internal {

// Constructs a lock of type L, forwarding ticket options where they apply
// (locks that are constructible from (topology, options) — today only the
// plain ticket lock). The single source of truth for this dispatch: both
// WithLock() and the heap-allocating experiment harnesses use it.
template <typename L, typename Mem>
L MakeLockOnStack(const LockTopology& topo, const TicketOptions& ticket_options) {
  if constexpr (std::is_constructible_v<L, const LockTopology&, const TicketOptions&>) {
    return L(topo, ticket_options);
  } else {
    (void)ticket_options;
    return L(topo);
  }
}

// Heap-allocating variant, for harnesses that keep vectors of locks alive.
template <typename L, typename Mem>
std::unique_ptr<L> MakeLockPtr(const LockTopology& topo, const TicketOptions& ticket_options) {
  if constexpr (std::is_constructible_v<L, const LockTopology&, const TicketOptions&>) {
    return std::make_unique<L>(topo, ticket_options);
  } else {
    (void)ticket_options;
    return std::make_unique<L>(topo);
  }
}

}  // namespace internal

// Instantiates the lock named by `kind` (constructed from `topo`, with
// `ticket_options` applied to plain ticket locks) and invokes
// fn(lock_reference). `fn` must be callable with every lock type. Dispatch
// cases are generated from SSYNC_LOCK_LIST (lock_common.h).
template <typename Mem, typename Fn>
void WithLock(LockKind kind, const LockTopology& topo, const TicketOptions& ticket_options,
              Fn&& fn) {
  switch (kind) {
#define SSYNC_LOCK_WITH(enumerator, name, type)                                       \
  case LockKind::enumerator: {                                                        \
    auto lock = internal::MakeLockOnStack<type<Mem>, Mem>(topo, ticket_options);      \
    fn(lock);                                                                         \
    return;                                                                           \
  }
    SSYNC_LOCK_LIST(SSYNC_LOCK_WITH)
#undef SSYNC_LOCK_WITH
  }
  SSYNC_CHECK(false);
}

// Type-level dispatch: invokes fn.template operator()<LockType>() for the
// lock type named by `kind`. Used by containers that are themselves templated
// over the lock type (e.g. Ssht<Mem, Lock>).
template <typename Mem, typename Fn>
void WithLockType(LockKind kind, Fn&& fn) {
  switch (kind) {
#define SSYNC_LOCK_WITH_TYPE(enumerator, name, type) \
  case LockKind::enumerator:                         \
    fn.template operator()<type<Mem>>();             \
    return;
    SSYNC_LOCK_LIST(SSYNC_LOCK_WITH_TYPE)
#undef SSYNC_LOCK_WITH_TYPE
  }
  SSYNC_CHECK(false);
}

// The paper enables the ticket optimizations "wherever possible": prefetchw
// exists on the x86 platforms (and pays off on the Opteron's incomplete
// directory); proportional back-off everywhere.
TicketOptions DefaultTicketOptions(const PlatformSpec& spec);

// Locks benchmarked on a platform: hierarchical locks are skipped on the
// single-sockets, as in the paper (Section 6.1.2).
std::vector<LockKind> LocksForPlatform(const PlatformSpec& spec);

}  // namespace ssync

#endif  // SRC_LOCKS_LOCKS_H_
