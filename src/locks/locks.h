// libslock: umbrella header and runtime-dispatch helper.
//
// The nine algorithms are templates; WithLock() instantiates the one named by
// a LockKind and hands it to a generic callable, which is how the benchmark
// harnesses sweep "all locks x all platforms" (Figures 5-8).
#ifndef SRC_LOCKS_LOCKS_H_
#define SRC_LOCKS_LOCKS_H_

#include "src/locks/array.h"
#include "src/locks/clh.h"
#include "src/locks/cohort.h"
#include "src/locks/hclh.h"
#include "src/locks/hticket.h"
#include "src/locks/lock_common.h"
#include "src/locks/mcs.h"
#include "src/locks/mutex.h"
#include "src/locks/tas.h"
#include "src/locks/ticket.h"
#include "src/locks/ttas.h"

namespace ssync {

// Instantiates the lock named by `kind` (constructed from `topo`, with
// `ticket_options` applied to plain ticket locks) and invokes
// fn(lock_reference). `fn` must be callable with every lock type.
template <typename Mem, typename Fn>
void WithLock(LockKind kind, const LockTopology& topo, const TicketOptions& ticket_options,
              Fn&& fn) {
  switch (kind) {
    case LockKind::kTas: {
      TasLock<Mem> lock(topo);
      fn(lock);
      return;
    }
    case LockKind::kTtas: {
      TtasLock<Mem> lock(topo);
      fn(lock);
      return;
    }
    case LockKind::kTicket: {
      TicketLock<Mem> lock(topo, ticket_options);
      fn(lock);
      return;
    }
    case LockKind::kArray: {
      ArrayLock<Mem> lock(topo);
      fn(lock);
      return;
    }
    case LockKind::kMutex: {
      MutexLock<Mem> lock(topo);
      fn(lock);
      return;
    }
    case LockKind::kMcs: {
      McsLock<Mem> lock(topo);
      fn(lock);
      return;
    }
    case LockKind::kClh: {
      ClhLock<Mem> lock(topo);
      fn(lock);
      return;
    }
    case LockKind::kHclh: {
      HclhLock<Mem> lock(topo);
      fn(lock);
      return;
    }
    case LockKind::kHticket: {
      HticketLock<Mem> lock(topo);
      fn(lock);
      return;
    }
  }
  SSYNC_CHECK(false);
}

// Type-level dispatch: invokes fn.template operator()<LockType>() for the
// lock type named by `kind`. Used by containers that are themselves templated
// over the lock type (e.g. Ssht<Mem, Lock>).
template <typename Mem, typename Fn>
void WithLockType(LockKind kind, Fn&& fn) {
  switch (kind) {
    case LockKind::kTas:
      fn.template operator()<TasLock<Mem>>();
      return;
    case LockKind::kTtas:
      fn.template operator()<TtasLock<Mem>>();
      return;
    case LockKind::kTicket:
      fn.template operator()<TicketLock<Mem>>();
      return;
    case LockKind::kArray:
      fn.template operator()<ArrayLock<Mem>>();
      return;
    case LockKind::kMutex:
      fn.template operator()<MutexLock<Mem>>();
      return;
    case LockKind::kMcs:
      fn.template operator()<McsLock<Mem>>();
      return;
    case LockKind::kClh:
      fn.template operator()<ClhLock<Mem>>();
      return;
    case LockKind::kHclh:
      fn.template operator()<HclhLock<Mem>>();
      return;
    case LockKind::kHticket:
      fn.template operator()<HticketLock<Mem>>();
      return;
  }
  SSYNC_CHECK(false);
}

// The paper enables the ticket optimizations "wherever possible": prefetchw
// exists on the x86 platforms (and pays off on the Opteron's incomplete
// directory); proportional back-off everywhere.
TicketOptions DefaultTicketOptions(const PlatformSpec& spec);

// Locks benchmarked on a platform: hierarchical locks are skipped on the
// single-sockets, as in the paper (Section 6.1.2).
std::vector<LockKind> LocksForPlatform(const PlatformSpec& spec);

}  // namespace ssync

#endif  // SRC_LOCKS_LOCKS_H_
