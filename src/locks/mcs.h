// MCS queue lock (Section 4.1, [29]).
//
// Acquirers append a per-thread queue node with an atomic exchange on the
// tail and spin on their own node; the releaser hands the lock to its
// successor. One spinner per cache line and O(1) lock state.
#ifndef SRC_LOCKS_MCS_H_
#define SRC_LOCKS_MCS_H_

#include <cstdint>
#include <vector>

#include "src/locks/lock_common.h"

namespace ssync {

template <typename Mem>
class McsLock {
 public:
  explicit McsLock(const LockTopology& topo) : nodes_(topo.max_threads) {}

  void Lock() {
    Node& me = nodes_[Mem::ThreadId()].value;
    me.next.Store(nullptr);
    me.locked.Store(1);
    Node* prev = tail_.Exchange(&me);
    if (prev != nullptr) {
      prev->next.Store(&me);
      while (me.locked.Load() != 0) {
        Mem::Pause(2);
      }
    }
  }

  void Unlock() {
    Node& me = nodes_[Mem::ThreadId()].value;
    Node* successor = me.next.Load();
    if (successor == nullptr) {
      Node* expected = &me;
      if (tail_.CompareExchange(expected, nullptr)) {
        return;  // no waiter
      }
      // A successor is between the exchange and the next-pointer store.
      while ((successor = me.next.Load()) == nullptr) {
        Mem::Pause(2);
      }
    }
    successor->locked.Store(0);
  }

  bool HasWaiters() {
    Node& me = nodes_[Mem::ThreadId()].value;
    return me.next.Load() != nullptr || tail_.Load() != &me;
  }

 private:
  struct Node {
    typename Mem::template Atomic<Node*> next{nullptr};
    typename Mem::template Atomic<std::uint32_t> locked{0};
  };

  typename Mem::template Atomic<Node*> tail_{nullptr};
  std::vector<Padded<Node>> nodes_;  // per-thread queue nodes
};

}  // namespace ssync

#endif  // SRC_LOCKS_MCS_H_
