// Ticket lock (Section 4.1, [29]) with the paper's two optimizations
// (Section 5.3, Figure 3):
//
//   * proportional back-off — a waiter knows exactly how many threads are
//     queued in front (ticket - current) and pauses proportionally, which
//     thins out the load burst when the lock is released;
//   * prefetchw — waiters acquire the lock line in Modified state before
//     loading it, so the releasing store finds a single exclusive copy and
//     never pays the Opteron's broadcast-invalidation for shared lines.
#ifndef SRC_LOCKS_TICKET_H_
#define SRC_LOCKS_TICKET_H_

#include <cstdint>

#include "src/locks/lock_common.h"

namespace ssync {

struct TicketOptions {
  bool proportional_backoff = true;
  bool prefetchw = false;
  std::uint64_t backoff_unit = 100;  // ~ one lock-handoff in cycles
};

template <typename Mem>
class alignas(kCacheLineSize) TicketLock {
 public:
  TicketLock() = default;
  explicit TicketLock(const LockTopology&) {}
  TicketLock(const LockTopology&, const TicketOptions& options) : options_(options) {}
  explicit TicketLock(const TicketOptions& options) : options_(options) {}

  void Lock() {
    const std::uint32_t ticket = next_.FetchAdd(1);
    for (;;) {
      // With prefetchw, the waiter pulls the lock line in Modified state and
      // reads it in one go, so the holder's release-store finds a single
      // exclusive copy instead of a crowd of Shared ones (Section 5.3).
      const std::uint32_t cur =
          options_.prefetchw ? current_.LoadRfo() : current_.Load();
      if (cur == ticket) {
        break;
      }
      if (options_.proportional_backoff) {
        Mem::Pause(options_.backoff_unit * (ticket - cur));
      }
    }
    *held_ticket_ = ticket;
  }

  bool TryLock() {
    const std::uint32_t cur = current_.Load();
    std::uint32_t expected = cur;
    if (next_.CompareExchange(expected, cur + 1)) {
      *held_ticket_ = cur;
      return true;
    }
    return false;
  }

  void Unlock() { current_.Store(*held_ticket_ + 1); }

  // True if another thread has taken a ticket behind the holder. Used by the
  // cohort (hierarchical) locks to decide local handoff.
  bool HasWaiters() { return next_.Load() != *held_ticket_ + 1; }

 private:
  TicketOptions options_{};
  typename Mem::template Atomic<std::uint32_t> next_{0};
  typename Mem::template Atomic<std::uint32_t> current_{0};
  // Holder-private bookkeeping: written only while the lock is held.
  Padded<std::uint32_t> held_ticket_;
};

}  // namespace ssync

#endif  // SRC_LOCKS_TICKET_H_
