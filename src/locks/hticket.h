// Hierarchical ticket lock (Section 4.1, footnote 3; the construction of
// Dice, Marathe & Shavit's lock cohorting [14]): a ticket lock per NUMA
// cluster plus a global ticket lock, C-TKT-TKT.
#ifndef SRC_LOCKS_HTICKET_H_
#define SRC_LOCKS_HTICKET_H_

#include "src/locks/cohort.h"
#include "src/locks/ticket.h"

namespace ssync {

template <typename Mem>
using HticketLock = CohortLock<Mem, TicketLock<Mem>>;

}  // namespace ssync

#endif  // SRC_LOCKS_HTICKET_H_
