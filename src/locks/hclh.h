// Hierarchical CLH lock (Section 4.1, [27]).
//
// Implemented as a cohort lock with per-cluster CLH queues (C-TKT-CLH in the
// taxonomy of [14]): waiters queue locally in CLH order and the lock migrates
// across clusters only when the handoff budget expires or a cluster drains.
// This preserves the two properties the paper attributes to HCLH — one
// spinner per cache line, and strong intra-socket locality of handoffs —
// without Luchangco et al.'s queue-splicing machinery (see DESIGN.md).
#ifndef SRC_LOCKS_HCLH_H_
#define SRC_LOCKS_HCLH_H_

#include "src/locks/clh.h"
#include "src/locks/cohort.h"

namespace ssync {

template <typename Mem>
using HclhLock = CohortLock<Mem, ClhLock<Mem>>;

}  // namespace ssync

#endif  // SRC_LOCKS_HCLH_H_
