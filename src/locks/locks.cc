#include "src/locks/locks.h"

#include <cstdio>
#include <cstdlib>

namespace ssync {

const char* ToString(LockKind kind) {
  switch (kind) {
#define SSYNC_LOCK_NAME(enumerator, name, type) \
  case LockKind::enumerator:                    \
    return name;
    SSYNC_LOCK_LIST(SSYNC_LOCK_NAME)
#undef SSYNC_LOCK_NAME
  }
  return "?";
}

LockKind LockKindFromString(const std::string& name) {
  for (const LockKind kind : kAllLockKinds) {
    if (name == ToString(kind)) {
      return kind;
    }
  }
  std::fprintf(stderr, "unknown lock: %s\n", name.c_str());
  std::abort();
}

bool IsHierarchical(LockKind kind) {
  return kind == LockKind::kHclh || kind == LockKind::kHticket ||
         kind == LockKind::kCohort;
}

TicketOptions DefaultTicketOptions(const PlatformSpec& spec) {
  TicketOptions options;
  options.proportional_backoff = true;
  options.prefetchw = spec.kind == PlatformKind::kOpteron ||
                      spec.kind == PlatformKind::kOpteron2 ||
                      spec.kind == PlatformKind::kXeon ||
                      spec.kind == PlatformKind::kXeon2 ||
                      // The native backend's Prefetchw compiles to the host's
                      // read-for-ownership prefetch (or a plain prefetch where
                      // the ISA has none); enabling it mirrors the paper's
                      // "wherever possible".
                      spec.kind == PlatformKind::kNative;
  return options;
}

std::vector<LockKind> LocksForPlatform(const PlatformSpec& spec) {
  std::vector<LockKind> kinds;
  for (const LockKind kind : kAllLockKinds) {
    if (IsHierarchical(kind) && spec.num_sockets == 1) {
      continue;
    }
    kinds.push_back(kind);
  }
  return kinds;
}

}  // namespace ssync
