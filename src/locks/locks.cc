#include "src/locks/locks.h"

#include <cstdio>
#include <cstdlib>

namespace ssync {

const char* ToString(LockKind kind) {
  switch (kind) {
    case LockKind::kTas:
      return "TAS";
    case LockKind::kTtas:
      return "TTAS";
    case LockKind::kTicket:
      return "TICKET";
    case LockKind::kArray:
      return "ARRAY";
    case LockKind::kMutex:
      return "MUTEX";
    case LockKind::kMcs:
      return "MCS";
    case LockKind::kClh:
      return "CLH";
    case LockKind::kHclh:
      return "HCLH";
    case LockKind::kHticket:
      return "HTICKET";
  }
  return "?";
}

LockKind LockKindFromString(const std::string& name) {
  for (const LockKind kind : kAllLockKinds) {
    if (name == ToString(kind)) {
      return kind;
    }
  }
  std::fprintf(stderr, "unknown lock: %s\n", name.c_str());
  std::abort();
}

bool IsHierarchical(LockKind kind) {
  return kind == LockKind::kHclh || kind == LockKind::kHticket;
}

TicketOptions DefaultTicketOptions(const PlatformSpec& spec) {
  TicketOptions options;
  options.proportional_backoff = true;
  options.prefetchw = spec.kind == PlatformKind::kOpteron ||
                      spec.kind == PlatformKind::kOpteron2 ||
                      spec.kind == PlatformKind::kXeon ||
                      spec.kind == PlatformKind::kXeon2;
  return options;
}

std::vector<LockKind> LocksForPlatform(const PlatformSpec& spec) {
  std::vector<LockKind> kinds;
  for (const LockKind kind : kAllLockKinds) {
    if (IsHierarchical(kind) && spec.num_sockets == 1) {
      continue;
    }
    kinds.push_back(kind);
  }
  return kinds;
}

}  // namespace ssync
