// Common declarations for the libslock lock library.
//
// All nine algorithms of the paper (Section 4.1) are implemented as templates
// over a memory backend `Mem` (src/core/mem.h) and share this file's
// LockTopology (thread count and thread->cluster map, needed by the
// hierarchical locks) and the LockKind registry used for runtime dispatch in
// the benchmark harnesses.
#ifndef SRC_LOCKS_LOCK_COMMON_H_
#define SRC_LOCKS_LOCK_COMMON_H_

#include <string>
#include <vector>

#include "src/platform/spec.h"
#include "src/util/cacheline.h"
#include "src/util/check.h"

namespace ssync {

// Thread-layout information given to every lock at construction.
//   max_threads: dense worker indices are in [0, max_threads).
//   cluster_of[tid]: NUMA cluster (socket) of the thread — used only by the
//       hierarchical locks (HCLH, HTICKET).
struct LockTopology {
  int max_threads = 1;
  std::vector<int> cluster_of;

  int num_clusters() const {
    int max_cluster = 0;
    for (const int c : cluster_of) {
      max_cluster = std::max(max_cluster, c);
    }
    return max_cluster + 1;
  }

  static LockTopology Flat(int threads) {
    LockTopology t;
    t.max_threads = threads;
    t.cluster_of.assign(threads, 0);
    return t;
  }

  // Topology matching the paper's placement of `threads` workers on `spec`.
  static LockTopology ForPlatform(const PlatformSpec& spec, int threads) {
    LockTopology t;
    t.max_threads = threads;
    t.cluster_of.resize(threads);
    for (int tid = 0; tid < threads; ++tid) {
      t.cluster_of[tid] = spec.SocketOf(spec.CpuForThread(tid));
    }
    return t;
  }
};

// The nine algorithms of the study (paper Figures 5-8 legend order).
enum class LockKind {
  kTas,
  kTtas,
  kTicket,
  kArray,
  kMutex,
  kMcs,
  kClh,
  kHclh,
  kHticket,
};

inline constexpr LockKind kAllLockKinds[] = {
    LockKind::kTas, LockKind::kTtas,   LockKind::kTicket,
    LockKind::kArray, LockKind::kMutex, LockKind::kMcs,
    LockKind::kClh, LockKind::kHclh,   LockKind::kHticket,
};

const char* ToString(LockKind kind);
LockKind LockKindFromString(const std::string& name);
bool IsHierarchical(LockKind kind);

}  // namespace ssync

#endif  // SRC_LOCKS_LOCK_COMMON_H_
