// Common declarations for the libslock lock library.
//
// The paper's nine algorithms (Section 4.1) plus the generic cohort lock are
// implemented as templates
// over a memory backend `Mem` (src/core/mem.h) and share this file's
// LockTopology (thread count and thread->cluster map, needed by the
// hierarchical locks) and the LockKind registry used for runtime dispatch in
// the benchmark harnesses.
#ifndef SRC_LOCKS_LOCK_COMMON_H_
#define SRC_LOCKS_LOCK_COMMON_H_

#include <string>
#include <vector>

#include "src/platform/spec.h"
#include "src/util/cacheline.h"
#include "src/util/check.h"

namespace ssync {

// Thread-layout information given to every lock at construction.
//   max_threads: dense worker indices are in [0, max_threads).
//   cluster_of[tid]: NUMA cluster (socket) of the thread — used only by the
//       hierarchical locks (HCLH, HTICKET).
struct LockTopology {
  int max_threads = 1;
  std::vector<int> cluster_of;

  int num_clusters() const {
    int max_cluster = 0;
    for (const int c : cluster_of) {
      max_cluster = std::max(max_cluster, c);
    }
    return max_cluster + 1;
  }

  static LockTopology Flat(int threads) {
    LockTopology t;
    t.max_threads = threads;
    t.cluster_of.assign(threads, 0);
    return t;
  }

  // Topology for workers at explicit cpu placements: thread tid runs on
  // cpus[tid], its cluster is that cpu's socket. This is how the discovered
  // native geometry reaches the hierarchical locks — the runtime's planned
  // placement (fill/scatter/smt-pair, or the paper's default) supplies
  // `cpus`, and spec.SocketOf consults the real per-cpu maps on the native
  // backend (src/platform/topology.h).
  static LockTopology FromSpec(const PlatformSpec& spec,
                               const std::vector<CpuId>& cpus) {
    LockTopology t;
    t.max_threads = static_cast<int>(cpus.size());
    t.cluster_of.resize(cpus.size());
    for (std::size_t tid = 0; tid < cpus.size(); ++tid) {
      t.cluster_of[tid] = spec.SocketOf(cpus[tid]);
    }
    return t;
  }

  // Topology matching the paper's placement of `threads` workers on `spec`.
  static LockTopology ForPlatform(const PlatformSpec& spec, int threads) {
    std::vector<CpuId> cpus(threads);
    for (int tid = 0; tid < threads; ++tid) {
      cpus[tid] = spec.CpuForThread(tid);
    }
    return FromSpec(spec, cpus);
  }
};

// The single source of truth for the lock algorithms of the study (paper
// Figures 5-8 legend order, then the extra cohort lock). Every per-lock
// table — the LockKind enum, the name<->enum mapping, the WithLock/
// WithLockType dispatchers in locks.h, and the torture suites — is generated
// from this list, so adding a lock is a one-line change here (plus its header
// include in locks.h).
//
// X(enumerator, "NAME", LockTemplate) — the third argument is only expanded
// inside locks.h, where all lock class templates are visible.
#define SSYNC_LOCK_LIST(X)           \
  X(kTas, "TAS", TasLock)            \
  X(kTtas, "TTAS", TtasLock)         \
  X(kTicket, "TICKET", TicketLock)   \
  X(kArray, "ARRAY", ArrayLock)      \
  X(kMutex, "MUTEX", MutexLock)      \
  X(kMcs, "MCS", McsLock)            \
  X(kClh, "CLH", ClhLock)            \
  X(kHclh, "HCLH", HclhLock)         \
  X(kHticket, "HTICKET", HticketLock) \
  X(kCohort, "COHORT", CohortMcsLock)

enum class LockKind {
#define SSYNC_LOCK_ENUMERATOR(enumerator, name, type) enumerator,
  SSYNC_LOCK_LIST(SSYNC_LOCK_ENUMERATOR)
#undef SSYNC_LOCK_ENUMERATOR
};

inline constexpr LockKind kAllLockKinds[] = {
#define SSYNC_LOCK_KIND(enumerator, name, type) LockKind::enumerator,
    SSYNC_LOCK_LIST(SSYNC_LOCK_KIND)
#undef SSYNC_LOCK_KIND
};

const char* ToString(LockKind kind);
LockKind LockKindFromString(const std::string& name);
bool IsHierarchical(LockKind kind);

// RAII acquire/release for any lock of this library (and any other type with
// Lock()/Unlock()). Used by the ssht/kvs hot paths so early returns cannot
// leak a held lock.
template <typename Lock>
class LockGuard {
 public:
  explicit LockGuard(Lock& lock) : lock_(lock) { lock_.Lock(); }
  ~LockGuard() { lock_.Unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Lock& lock_;
};

}  // namespace ssync

#endif  // SRC_LOCKS_LOCK_COMMON_H_
