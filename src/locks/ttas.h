// Test-and-test-and-set lock with exponential back-off (Section 4.1, [4,20]).
//
// Waiters spin on plain loads (shared copies, no coherence traffic while the
// lock is held) and only attempt the atomic exchange when the lock is
// observed free; failed attempts back off exponentially.
#ifndef SRC_LOCKS_TTAS_H_
#define SRC_LOCKS_TTAS_H_

#include <cstdint>

#include "src/locks/lock_common.h"

namespace ssync {

template <typename Mem>
class alignas(kCacheLineSize) TtasLock {
 public:
  static constexpr std::uint64_t kMinBackoff = 64;
  static constexpr std::uint64_t kMaxBackoff = 8192;

  TtasLock() = default;
  explicit TtasLock(const LockTopology&) {}

  void Lock() {
    std::uint64_t backoff = kMinBackoff;
    for (;;) {
      if (flag_.Load() == 0) {
        if (flag_.TestAndSet() == 0) {
          return;
        }
        // Lost the race: the line is being hammered; back off.
        Mem::Pause(backoff);
        backoff = backoff * 2 <= kMaxBackoff ? backoff * 2 : kMaxBackoff;
      } else {
        Mem::Pause(2);
      }
    }
  }

  bool TryLock() { return flag_.Load() == 0 && flag_.TestAndSet() == 0; }

  void Unlock() { flag_.Store(0); }

 private:
  typename Mem::template Atomic<std::uint32_t> flag_{0};
};

}  // namespace ssync

#endif  // SRC_LOCKS_TTAS_H_
