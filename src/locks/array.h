// Anderson array-based queue lock (Section 4.1, [20]).
//
// A FAI on the tail assigns each acquirer a private, cache-line-sized slot to
// spin on; the release hands the lock to the next slot. One spinner per line,
// FIFO order, O(threads) memory per lock.
#ifndef SRC_LOCKS_ARRAY_H_
#define SRC_LOCKS_ARRAY_H_

#include <cstdint>
#include <vector>

#include "src/locks/lock_common.h"

namespace ssync {

template <typename Mem>
class ArrayLock {
 public:
  explicit ArrayLock(const LockTopology& topo)
      : mask_(NextPow2(static_cast<std::uint32_t>(topo.max_threads)) - 1),
        slots_(mask_ + 1) {
    slots_[0].value.SetInit(1);  // the first acquirer proceeds immediately
  }

  void Lock() {
    const std::uint32_t idx = tail_.FetchAdd(1) & mask_;
    while (slots_[idx].value.Load() == 0) {
      Mem::Pause(2);
    }
    *held_idx_ = idx;
  }

  void Unlock() {
    const std::uint32_t idx = *held_idx_;
    slots_[idx].value.Store(0);
    slots_[(idx + 1) & mask_].value.Store(1);
  }

 private:
  static std::uint32_t NextPow2(std::uint32_t n) {
    std::uint32_t p = 1;
    while (p < n) {
      p <<= 1;
    }
    return p;
  }

  const std::uint32_t mask_;
  typename Mem::template Atomic<std::uint32_t> tail_{0};
  std::vector<Padded<typename Mem::template Atomic<std::uint32_t>>> slots_;
  Padded<std::uint32_t> held_idx_;  // holder-private
};

}  // namespace ssync

#endif  // SRC_LOCKS_ARRAY_H_
