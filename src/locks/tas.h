// Test-and-set spin lock (Section 4.1).
//
// The simplest spin lock: every acquisition attempt is an atomic exchange on
// the single flag word, so waiters continuously pull the line exclusive —
// maximal coherence traffic under contention (which is the point of studying
// it).
#ifndef SRC_LOCKS_TAS_H_
#define SRC_LOCKS_TAS_H_

#include <cstdint>

#include "src/locks/lock_common.h"

namespace ssync {

template <typename Mem>
class alignas(kCacheLineSize) TasLock {
 public:
  TasLock() = default;
  explicit TasLock(const LockTopology&) {}

  void Lock() {
    while (flag_.TestAndSet() != 0) {
      Mem::Pause(2);
    }
  }

  bool TryLock() { return flag_.TestAndSet() == 0; }

  void Unlock() { flag_.Store(0); }

 private:
  typename Mem::template Atomic<std::uint32_t> flag_{0};
};

}  // namespace ssync

#endif  // SRC_LOCKS_TAS_H_
