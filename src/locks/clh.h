// CLH queue lock (Section 4.1, [43]).
//
// The queue is implicit: each acquirer exchanges its own node into the tail
// and spins on its *predecessor's* node. On release a thread's node is
// consumed by its successor, and it recycles the predecessor's node for its
// next acquisition.
#ifndef SRC_LOCKS_CLH_H_
#define SRC_LOCKS_CLH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/locks/lock_common.h"

namespace ssync {

template <typename Mem>
class ClhLock {
 public:
  explicit ClhLock(const LockTopology& topo)
      : pool_(topo.max_threads + 1),
        my_node_(topo.max_threads),
        my_pred_(topo.max_threads) {
    // pool_[max_threads] is the initial (released) tail sentinel.
    Node* sentinel = &pool_[topo.max_threads].value;
    sentinel->locked.SetInit(0);
    tail_.SetInit(sentinel);
    for (int tid = 0; tid < topo.max_threads; ++tid) {
      *my_node_[tid] = &pool_[tid].value;
    }
  }

  void Lock() {
    const int tid = Mem::ThreadId();
    Node* me = *my_node_[tid];
    me->locked.Store(1);
    Node* pred = tail_.Exchange(me);
    *my_pred_[tid] = pred;
    while (pred->locked.Load() != 0) {
      Mem::Pause(2);
    }
  }

  void Unlock() {
    const int tid = Mem::ThreadId();
    Node* me = *my_node_[tid];
    me->locked.Store(0);
    *my_node_[tid] = *my_pred_[tid];  // recycle the consumed predecessor node
  }

  bool HasWaiters() {
    const int tid = Mem::ThreadId();
    return tail_.Load() != *my_node_[tid];
  }

 private:
  struct Node {
    typename Mem::template Atomic<std::uint32_t> locked{0};
  };

  typename Mem::template Atomic<Node*> tail_{nullptr};
  std::vector<Padded<Node>> pool_;
  // Holder-/owner-private bookkeeping slots (never accessed concurrently).
  std::vector<Padded<Node*>> my_node_;
  std::vector<Padded<Node*>> my_pred_;
};

}  // namespace ssync

#endif  // SRC_LOCKS_CLH_H_
