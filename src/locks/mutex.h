// Blocking mutex in the style of the Pthread Mutex (Section 4.1).
//
// Fast path: a CAS on the state word. Slow path: a brief adaptive spin, then
// the thread enqueues itself and parks (futex-style). The park/unpark
// primitives come from the memory backend: on the simulator they model the
// syscall + kernel-wakeup cost; natively they use a per-thread semaphore.
//
// The waiter queue itself is host-level bookkeeping (the kernel's futex wait
// queue in the real implementation) and is not part of the modeled memory.
#ifndef SRC_LOCKS_MUTEX_H_
#define SRC_LOCKS_MUTEX_H_

#include <cstdint>
#include <deque>
#include <mutex>

#include "src/locks/lock_common.h"

namespace ssync {

template <typename Mem>
class alignas(kCacheLineSize) MutexLock {
 public:
  static constexpr int kSpinAttempts = 32;

  MutexLock() = default;
  explicit MutexLock(const LockTopology&) {}

  void Lock() {
    std::uint32_t expected = 0;
    if (state_.CompareExchange(expected, 1)) {
      return;
    }
    // Adaptive spin (glibc's PTHREAD_MUTEX_ADAPTIVE-style short spin).
    for (int i = 0; i < kSpinAttempts; ++i) {
      Mem::Pause(8);
      if (state_.Load() == 0) {
        expected = 0;
        if (state_.CompareExchange(expected, 1)) {
          return;
        }
      }
    }
    for (;;) {
      if (state_.Exchange(2) == 0) {
        return;  // acquired (marked contended; an unneeded wake is benign)
      }
      {
        std::lock_guard<std::mutex> g(queue_mutex_);
        waiters_.push_back(Mem::ThreadId());
      }
      Mem::ParkSelf();
    }
  }

  bool TryLock() {
    std::uint32_t expected = 0;
    return state_.CompareExchange(expected, 1);
  }

  void Unlock() {
    if (state_.Exchange(0) == 2) {
      int waiter = -1;
      {
        std::lock_guard<std::mutex> g(queue_mutex_);
        if (!waiters_.empty()) {
          waiter = waiters_.front();
          waiters_.pop_front();
        }
      }
      if (waiter >= 0) {
        Mem::UnparkThread(waiter);
      }
    }
  }

 private:
  // 0: free, 1: locked, 2: locked with (possible) waiters.
  typename Mem::template Atomic<std::uint32_t> state_{0};
  std::mutex queue_mutex_;
  std::deque<int> waiters_;
};

}  // namespace ssync

#endif  // SRC_LOCKS_MUTEX_H_
