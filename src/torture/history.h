// Timestamped operation histories and a per-key register-semantics checker —
// the correctness backbone of the table torturers (table_torture.h).
//
// Worker threads record every table operation with invocation/response
// timestamps from the backend clock (`Mem::Now()`): virtual cycles on the
// simulator (where all globally visible operations serialize in virtual-time
// order, so timestamps are exactly comparable across cpus), TSC ticks on the
// native backend (comparable up to a small skew, absorbed by a caller-chosen
// slack). After the run, CheckSingleWriterRegister validates the merged
// history against atomic-register semantics per key: under the single-writer-
// per-key discipline the torturers enforce, each key's writes are totally
// ordered, so the interval analysis is exact — a read must return either the
// state left by the last write that completed before it began, or the state
// of a write it overlaps. Anything else (stale value, value from the future,
// a value never written, a torn payload) is a violation.
#ifndef SRC_TORTURE_HISTORY_H_
#define SRC_TORTURE_HISTORY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/torture/torture.h"
#include "src/util/cacheline.h"

namespace ssync {

struct TableOp {
  enum class Kind : std::uint8_t { kPut, kGet, kRemove };

  Kind kind = Kind::kGet;
  int tid = 0;
  std::uint64_t key = 0;
  // Put: the (globally unique, nonzero) value written. Get: the value
  // observed, 0 when absent.
  std::uint64_t value = 0;
  // Get: key was present. Remove: key was present. Put: key was newly
  // inserted (vs updated in place) — not checked, tables differ.
  bool found = false;
  // Get only: the table answered via its validated lock-free read path
  // (Kvs/Ssht optimistic_reads) instead of the bucket lock. Optimistic reads
  // participate in the register audit exactly like locked ones — same
  // interval rules — and violation reports label them, so a seqlock bug
  // shows up attributed to the path that produced it.
  bool optimistic = false;
  std::uint64_t t_inv = 0;   // clock just before the call
  std::uint64_t t_resp = 0;  // clock just after it returned
};

// Per-thread append-only logs (no synchronization on the hot path; each
// thread owns its padded slot). Merged after the workers join.
class HistoryLog {
 public:
  explicit HistoryLog(int threads, std::size_t reserve_per_thread = 0)
      : logs_(threads) {
    for (auto& log : logs_) {
      log.value.reserve(reserve_per_thread);
    }
  }

  void Record(int tid, const TableOp& op) { logs_[tid].value.push_back(op); }

  std::vector<TableOp> Merged() const {
    std::vector<TableOp> all;
    std::size_t total = 0;
    for (const auto& log : logs_) {
      total += log.value.size();
    }
    all.reserve(total);
    for (const auto& log : logs_) {
      all.insert(all.end(), log.value.begin(), log.value.end());
    }
    return all;
  }

 private:
  std::vector<Padded<std::vector<TableOp>>> logs_;
};

// Clock slack for native-backend histories: TSC ticks of slop absorbing
// cross-core clock skew plus the gap between a timestamp and the operation's
// serialization point. The single definition every native torture caller
// (tests and the `torture` experiment) passes as `clock_slack`; simulator
// callers pass 0 — virtual time is exact.
inline constexpr std::uint64_t kNativeTortureClockSlack = 50000;

// Validates a single-writer-per-key history (see file comment) and records
// violations into `report`. `clock_slack` widens every write's interval by
// that many clock ticks before real-time comparisons — 0 on the simulator
// (timestamps are exact), kNativeTortureClockSlack natively.
void CheckSingleWriterRegister(const std::vector<TableOp>& history,
                               std::uint64_t clock_slack, TortureReport* report);

// The state each key is left in by its write sequence: key -> final value,
// with removed/never-inserted keys absent. Input must satisfy the same
// single-writer discipline. Used for post-run occupancy checks against the
// table's own Size()/Get().
std::map<std::uint64_t, std::uint64_t> FinalWriteState(
    const std::vector<TableOp>& history);

}  // namespace ssync

#endif  // SRC_TORTURE_HISTORY_H_
