#include "src/torture/torture.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/torture/history.h"

namespace ssync {

std::string TortureReport::Summary() const {
  char buf[160];
  if (ok()) {
    std::snprintf(buf, sizeof(buf), "ok (%" PRIu64 " ops)", ops);
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%" PRIu64 " violation(s) in %" PRIu64 " ops:",
                violation_count_, ops);
  std::string out = buf;
  for (const std::string& v : violations_) {
    out += "\n  ";
    out += v;
  }
  if (violation_count_ > violations_.size()) {
    std::snprintf(buf, sizeof(buf), "\n  ... and %" PRIu64 " more",
                  violation_count_ - violations_.size());
    out += buf;
  }
  return out;
}

namespace {

// State of a key after a prefix of its write sequence: version 0 is the
// initial (absent) state, version i >= 1 the state left by write i-1.
struct KeyState {
  bool present = false;
  std::uint64_t value = 0;
};

std::string DescribeOp(const TableOp& op) {
  char buf[176];
  // Optimistic (validated lock-free) gets are labeled so a seqlock bug is
  // attributed to the read path that produced it.
  const char* kind = op.kind == TableOp::Kind::kPut   ? "put"
                     : op.kind == TableOp::Kind::kGet ? (op.optimistic ? "get[optimistic]" : "get")
                                                      : "remove";
  std::snprintf(buf, sizeof(buf),
                "%s(key=%" PRIu64 ") by tid %d -> (found=%d, value=%" PRIx64
                ") at [%" PRIu64 ", %" PRIu64 "]",
                kind, op.key, op.tid, op.found ? 1 : 0, op.value, op.t_inv,
                op.t_resp);
  return buf;
}

}  // namespace

void CheckSingleWriterRegister(const std::vector<TableOp>& history,
                               std::uint64_t clock_slack, TortureReport* report) {
  // Partition by key.
  std::map<std::uint64_t, std::vector<const TableOp*>> by_key;
  for (const TableOp& op : history) {
    by_key[op.key].push_back(&op);
  }

  for (auto& [key, ops] : by_key) {
    // The key's write sequence, in invocation order. A single writer issues
    // them sequentially, so invocation order == response order == real-time
    // order.
    std::vector<const TableOp*> writes;
    for (const TableOp* op : ops) {
      if (op->kind != TableOp::Kind::kGet) {
        writes.push_back(op);
      }
    }
    std::sort(writes.begin(), writes.end(),
              [](const TableOp* a, const TableOp* b) { return a->t_inv < b->t_inv; });
    if (!writes.empty()) {
      const int writer = writes.front()->tid;
      bool discipline_ok = true;
      for (const TableOp* w : writes) {
        if (w->tid != writer) {
          report->Violation("history discipline broken (multiple writers): " +
                            DescribeOp(*w));
          discipline_ok = false;
          break;
        }
      }
      if (!discipline_ok) {
        continue;  // this key's register analysis would be meaningless;
                   // the other keys still get checked
      }
    }

    // Cumulative states: states[v] is the key's state at version v.
    std::vector<KeyState> states(writes.size() + 1);
    for (std::size_t i = 0; i < writes.size(); ++i) {
      states[i + 1] = writes[i]->kind == TableOp::Kind::kPut
                          ? KeyState{true, writes[i]->value}
                          : KeyState{false, 0};
    }

    for (const TableOp* op : ops) {
      if (op->kind != TableOp::Kind::kGet) {
        continue;
      }
      // Valid versions form the contiguous range [lo, hi]:
      //   lo: version after the last write that completed (plus slack) before
      //       the read began — older states are stale;
      //   hi: version after the last write that began before (slack after)
      //       the read ended — later states are from the future.
      std::size_t lo = 0;
      while (lo < writes.size() &&
             writes[lo]->t_resp + clock_slack < op->t_inv) {
        ++lo;
      }
      std::size_t hi = lo;
      while (hi < writes.size() &&
             writes[hi]->t_inv <= op->t_resp + clock_slack) {
        ++hi;
      }
      bool valid = false;
      for (std::size_t v = lo; v <= hi && !valid; ++v) {
        const KeyState& s = states[v];
        valid = op->found ? (s.present && s.value == op->value) : !s.present;
      }
      if (!valid) {
        // Distinguish the never-written case: it means cross-key corruption
        // or a torn read rather than a linearization-order bug.
        bool ever_written = !op->found;
        for (std::size_t v = 1; v <= writes.size() && !ever_written; ++v) {
          ever_written = states[v].present && states[v].value == op->value;
        }
        report->Violation(std::string(ever_written
                                          ? "stale or reordered read: "
                                          : "read of a never-written value: ") +
                          DescribeOp(*op));
      }
    }
  }
}

std::map<std::uint64_t, std::uint64_t> FinalWriteState(
    const std::vector<TableOp>& history) {
  std::map<std::uint64_t, const TableOp*> last_write;
  for (const TableOp& op : history) {
    if (op.kind == TableOp::Kind::kGet) {
      continue;
    }
    auto [it, inserted] = last_write.emplace(op.key, &op);
    if (!inserted && it->second->t_inv < op.t_inv) {
      it->second = &op;
    }
  }
  std::map<std::uint64_t, std::uint64_t> state;
  for (const auto& [key, op] : last_write) {
    if (op->kind == TableOp::Kind::kPut) {
      state[key] = op->value;
    }
  }
  return state;
}

}  // namespace ssync
