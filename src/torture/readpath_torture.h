// Read-path torture: aims a pack of hot-loop readers at Set/Delete storms
// and checks two properties no interval analysis is needed for — so it can
// run far more reads per second than the history-based torturers:
//
//   * Torn reads: every returned payload must decode as one replicated
//     64-bit write tag (EncodePayload/DecodePayload, table_torture.h). A
//     seqlock that validates too early, fences in the wrong place, or
//     re-reads the sequence word non-atomically returns a half-copied
//     payload here.
//   * Staleness: each written value embeds a per-key version that the key's
//     single writer increments monotonically (across deletes too). Two
//     sequential reads by one reader are real-time ordered, so a reader
//     that ever observes key k at version v must never later observe k at a
//     version < v. A validated-but-stale snapshot (e.g. validating against
//     the wrong bucket's sequence word) fails this without any clock math.
//   * Cross-key leakage: the value also embeds the key it was written for;
//     a chain-walk bug that returns another key's node shows up directly.
//
// The storm deliberately includes deletes while readers are live: for Kvs
// this is only legal with Config::defer_free (implied by optimistic_reads),
// which is exactly the contract the suite exists to prove (see kvs.h).
// Works against any Traits from table_torture.h on either backend; run it
// with the table's optimistic path on and off to referee both.
#ifndef SRC_TORTURE_READPATH_TORTURE_H_
#define SRC_TORTURE_READPATH_TORTURE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/kvs/kvs.h"
#include "src/torture/table_torture.h"
#include "src/torture/torture.h"
#include "src/util/cacheline.h"
#include "src/util/rng.h"

namespace ssync {

struct ReadPathTortureOptions {
  int writers = 2;
  int readers = 2;
  int keys = 16;    // key k belongs to writer k % writers
  int rounds = 64;  // write passes per writer over its key set
  // Reads per reader = rounds * keys (readers hammer while writers storm).
  std::uint64_t seed = 1;
  double delete_fraction = 0.3;  // chance a write slot deletes instead
};

namespace torture_internal {

// Value layout: (key + 1) in the top 24 bits, version in the low 40. The
// key field catches cross-key leakage, the version drives the monotonicity
// check; both survive DecodePayload's torn-read screen.
inline constexpr int kReadPathVersionBits = 40;

inline std::uint64_t ReadPathValue(std::uint64_t key, std::uint64_t version) {
  return ((key + 1) << kReadPathVersionBits) | version;
}

}  // namespace torture_internal

// Returns the merged report; report.ops counts reads + writes. The caller
// asserts report.ok() and — when the table exposes stats — that the
// optimistic path actually served reads.
template <typename Runtime, typename Traits>
TortureReport TortureReadPath(Runtime& rt, typename Traits::Table& table,
                              const ReadPathTortureOptions& opts) {
  using Mem = typename Runtime::Mem;
  const int threads = opts.writers + opts.readers;
  TortureReport report;
  std::vector<TortureReport> reports(threads);

  rt.Run(threads, [&](int tid) {
    Rng rng(opts.seed * 67 + static_cast<std::uint64_t>(tid));
    TortureReport& r = reports[tid];
    if (tid < opts.writers) {
      // Single writer per key: version = round + 1 increases monotonically
      // whether or not delete slots intervene, so a post-delete re-insert
      // still never moves a key's version backwards.
      for (int round = 0; round < opts.rounds; ++round) {
        for (std::uint64_t key = static_cast<std::uint64_t>(tid);
             key < static_cast<std::uint64_t>(opts.keys);
             key += static_cast<std::uint64_t>(opts.writers)) {
          if (rng.NextBool(opts.delete_fraction)) {
            Traits::Remove(table, key);
          } else {
            Traits::Put(table, key,
                        torture_internal::ReadPathValue(
                            key, static_cast<std::uint64_t>(round + 1)));
          }
          ++r.ops;
          Mem::Pause(rng.NextBelow(50));
        }
      }
    } else {
      std::vector<std::uint64_t> max_version(
          static_cast<std::size_t>(opts.keys), 0);
      const int reads = opts.rounds * opts.keys;
      for (int i = 0; i < reads; ++i) {
        const std::uint64_t key =
            rng.NextBelow(static_cast<std::uint64_t>(opts.keys));
        std::uint64_t value = 0;
        bool optimistic = false;
        if (Traits::Get(table, key, &value, &r, &optimistic)) {
          const char* path = optimistic ? " [optimistic]" : " [locked]";
          const std::uint64_t got_key =
              (value >> torture_internal::kReadPathVersionBits) - 1;
          const std::uint64_t version =
              value &
              ((std::uint64_t{1} << torture_internal::kReadPathVersionBits) - 1);
          if (got_key != key) {
            r.Violation("cross-key read: key " + std::to_string(key) +
                        " returned a value written for key " +
                        std::to_string(got_key) + path);
          } else if (version < max_version[key]) {
            r.Violation("stale read: key " + std::to_string(key) +
                        " went backwards from version " +
                        std::to_string(max_version[key]) + " to " +
                        std::to_string(version) + path);
          } else {
            max_version[key] = version;
          }
        }
        ++r.ops;
        Mem::Pause(rng.NextBelow(30));
      }
    }
  });

  for (const TortureReport& r : reports) {
    report.Merge(r);
  }
  return report;
}

// ---------------------------------------------------------------------------
// Eviction + TTL storm (Kvs-specific: it drives EvictLru/ReapExpired and the
// real BeginReclaim/FinishReclaim grace-period machinery, none of which the
// table traits abstract).
//
// Thread cast: writers + readers as in TortureReadPath, plus ONE dedicated
// evictor thread that continuously evicts the LRU tail, reaps expired items,
// and — crucially — runs the full grace-period protocol so retired victims
// are actually FREED while optimistic readers are live. Under ASan this
// turns any seqlock read that can still touch a reaped item into a hard
// use-after-free, not a silent torn value.
//
// TTL convention: the wall clock is frozen at `now_s`; every key with
// key % 4 == 3 is "mortal" and always written with exptime 1 (already dead),
// the rest are immortal (exptime 0). A reader Get that returns a mortal key
// is a TTL violation — lazy expiry must filter it on both read paths.
//
// Quiescence: each worker bumps a padded epoch counter between operations
// (an op boundary holds no references into the table — the same per-loop
// epoch scheme ssyncd's workers use). The evictor seals a retired batch,
// waits for every live worker to pass a boundary, then frees the batch.
// ---------------------------------------------------------------------------

struct EvictionStormOptions {
  int writers = 2;
  int readers = 2;
  int keys = 32;    // key k belongs to writer k % writers; k % 4 == 3 mortal
  int rounds = 64;  // write passes per writer over its key set
  std::uint64_t seed = 1;
  std::uint64_t now_s = 2;       // frozen clock; mortal items carry exptime 1
  double delete_fraction = 0.2;  // chance a write slot deletes instead
};

struct EvictionStormOutcome {
  std::uint64_t evicted = 0;          // successful EvictLru calls
  std::uint64_t reclaimed = 0;        // items actually freed by the evictor
  std::uint64_t reclaim_batches = 0;  // grace periods that freed something
};

// Native runtimes only: the evictor spin-waits on std::atomic epochs, which
// would never yield under the simulator's cooperative fibers.
template <typename Runtime, typename Mem, typename Lock>
TortureReport TortureKvsEvictionStorm(Runtime& rt, Kvs<Mem, Lock>& kvs,
                                      const EvictionStormOptions& opts,
                                      EvictionStormOutcome* outcome) {
  const int workers = opts.writers + opts.readers;
  const int threads = workers + 1;  // + the evictor
  std::vector<TortureReport> reports(threads);

  struct WorkerSync {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<bool> done{false};
  };
  std::vector<Padded<WorkerSync>> sync(static_cast<std::size_t>(workers));
  std::atomic<int> live{workers};

  const auto mortal = [](std::uint64_t key) { return key % 4 == 3; };

  rt.Run(threads, [&](int tid) {
    Rng rng(opts.seed * 131 + static_cast<std::uint64_t>(tid));
    TortureReport& r = reports[tid];

    if (tid == workers) {
      // The evictor/reclaimer. EvictLru and ReapExpired retire items out of
      // live bucket chains; the grace-period pass below frees them for real.
      while (live.load(std::memory_order_acquire) > 0) {
        bool expired = false;
        if (kvs.EvictLru(opts.now_s, &expired)) {
          ++outcome->evicted;
        }
        kvs.ReapExpired(/*limit=*/8, opts.now_s);
        if (kvs.HasRetired()) {
          kvs.BeginReclaim();
          for (int t = 0; t < workers; ++t) {
            const WorkerSync& ws = sync[static_cast<std::size_t>(t)].value;
            const std::uint64_t seen = ws.epoch.load(std::memory_order_acquire);
            while (!ws.done.load(std::memory_order_acquire) &&
                   ws.epoch.load(std::memory_order_acquire) == seen) {
              Mem::Pause(64);
            }
          }
          const std::size_t n = kvs.FinishReclaim();
          outcome->reclaimed += n;
          outcome->reclaim_batches += n > 0 ? 1 : 0;
        }
        Mem::Pause(rng.NextBelow(100));
      }
      // Workers are gone: drain whatever retired after the last pass.
      kvs.BeginReclaim();
      outcome->reclaimed += kvs.FinishReclaim();
      return;
    }

    WorkerSync& my = sync[static_cast<std::size_t>(tid)].value;
    if (tid < opts.writers) {
      for (int round = 0; round < opts.rounds; ++round) {
        for (std::uint64_t key = static_cast<std::uint64_t>(tid);
             key < static_cast<std::uint64_t>(opts.keys);
             key += static_cast<std::uint64_t>(opts.writers)) {
          my.epoch.fetch_add(1, std::memory_order_release);
          if (rng.NextBool(opts.delete_fraction)) {
            kvs.Delete(key);
          } else {
            std::uint8_t payload[kKvsValueBytes];
            torture_internal::EncodePayload(
                torture_internal::ReadPathValue(
                    key, static_cast<std::uint64_t>(round + 1)),
                payload, kKvsValueBytes);
            kvs.Set(key, payload, mortal(key) ? 1u : 0u);
          }
          ++r.ops;
          Mem::Pause(rng.NextBelow(50));
        }
      }
    } else {
      std::vector<std::uint64_t> max_version(
          static_cast<std::size_t>(opts.keys), 0);
      const int reads = opts.rounds * opts.keys;
      for (int i = 0; i < reads; ++i) {
        my.epoch.fetch_add(1, std::memory_order_release);
        const std::uint64_t key =
            rng.NextBelow(static_cast<std::uint64_t>(opts.keys));
        std::uint8_t payload[kKvsValueBytes];
        bool optimistic = false;
        if (kvs.Get(key, payload, &optimistic, opts.now_s, /*cas_out=*/nullptr)) {
          const char* path = optimistic ? " [optimistic]" : " [locked]";
          const std::uint64_t value = torture_internal::DecodePayload(
              payload, kKvsValueBytes, key, &r);
          const std::uint64_t got_key =
              (value >> torture_internal::kReadPathVersionBits) - 1;
          const std::uint64_t version =
              value &
              ((std::uint64_t{1} << torture_internal::kReadPathVersionBits) - 1);
          if (mortal(key)) {
            r.Violation("TTL violation: expired key " + std::to_string(key) +
                        " was served" + path);
          } else if (got_key != key) {
            r.Violation("cross-key read: key " + std::to_string(key) +
                        " returned a value written for key " +
                        std::to_string(got_key) + path);
          } else if (version < max_version[key]) {
            r.Violation("stale read: key " + std::to_string(key) +
                        " went backwards from version " +
                        std::to_string(max_version[key]) + " to " +
                        std::to_string(version) + path);
          } else {
            max_version[key] = version;
          }
        }
        ++r.ops;
        Mem::Pause(rng.NextBelow(30));
      }
    }
    my.done.store(true, std::memory_order_release);
    live.fetch_sub(1, std::memory_order_acq_rel);
  });

  TortureReport report;
  for (const TortureReport& r : reports) {
    report.Merge(r);
  }
  return report;
}

}  // namespace ssync

#endif  // SRC_TORTURE_READPATH_TORTURE_H_
