// Hash-table / kvs torturers: drive Ssht and Kvs with timestamped,
// uniquely-valued operations and validate the recorded history with the
// per-key register checker (history.h).
//
// Two disciplines:
//   * TortureTableSingleWriter — each key is owned by exactly one writer
//     thread (readers roam freely), so each key's write sequence is totally
//     ordered and the linearizability-style interval check is exact.
//   * TortureTableMultiWriter — all threads mutate a shared key range; the
//     precise order is unknowable, so the check is integrity-based: every
//     payload carries a tag derived from its key, making cross-key leakage,
//     torn payload copies, and resurrected values detectable. A final
//     single-threaded drain validates the size/occupancy invariants.
//
// Payloads replicate the 64-bit value across the full payload buffer, so a
// half-copied (torn) payload — two writers in the same critical section —
// cannot decode cleanly.
//
// Kvs Get-vs-Delete discipline depends on configuration (see the contract in
// kvs.h). In the default immediate-free structure a Get racing a Delete on
// the same key may touch a freed item, so KvsTortureTraits phases never issue
// a Remove while concurrent Gets are possible (kRemoveRacesWithGet). With
// Config::defer_free (and therefore with optimistic_reads, which implies it)
// the race is safe — victims are retired, not freed — and
// KvsDeferFreeTortureTraits lets the torturers throw removes at live readers.
#ifndef SRC_TORTURE_TABLE_TORTURE_H_
#define SRC_TORTURE_TABLE_TORTURE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "src/kvs/kvs.h"
#include "src/ssht/ssht.h"
#include "src/torture/history.h"
#include "src/torture/torture.h"
#include "src/util/rng.h"

namespace ssync {

struct TableTortureOptions {
  int writers = 2;
  int readers = 2;
  int keys = 16;   // key space [0, keys); key k belongs to writer k % writers
  int rounds = 24; // write passes over each writer's key set
  std::uint64_t seed = 1;
  // Timestamp slop for the register checker: 0 on the simulator (exact
  // virtual time), a few thousand TSC ticks on the native backend.
  std::uint64_t clock_slack = 0;
  // Fraction of single-writer write slots that remove instead of put (only
  // honored where removes cannot race gets; see file comment).
  double remove_fraction = 0.2;
};

namespace torture_internal {

// Replicates `value` across the payload buffer (little-endian u64, repeated).
inline void EncodePayload(std::uint64_t value, std::uint8_t* payload, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    payload[i] = static_cast<std::uint8_t>(value >> ((i % 8) * 8));
  }
}

// Reads the value back and verifies the replication; a mismatch means a torn
// payload (two writers interleaved inside the table's critical section).
inline std::uint64_t DecodePayload(const std::uint8_t* payload, int bytes,
                                   std::uint64_t key, TortureReport* report) {
  std::uint64_t value = 0;
  std::memcpy(&value, payload, sizeof(value));
  for (int i = 8; i < bytes; ++i) {
    if (payload[i] != static_cast<std::uint8_t>(value >> ((i % 8) * 8))) {
      report->Violation("torn payload for key " + std::to_string(key) +
                        " at byte " + std::to_string(i));
      break;
    }
  }
  return value;
}

// 16-bit nonzero key tag for the multi-writer integrity check.
inline std::uint64_t KeyTag(std::uint64_t key) {
  std::uint64_t s = key;
  return (SplitMix64(s) & 0xffff) | 1;
}

template <typename T, typename = void>
struct HasSize : std::false_type {};
template <typename T>
struct HasSize<T, std::void_t<decltype(std::declval<const T&>().Size())>>
    : std::true_type {};

}  // namespace torture_internal

// Uniform put/get/remove face over the two tables.
template <typename Mem, typename Lock>
struct SshtTortureTraits {
  using Table = Ssht<Mem, Lock>;
  static constexpr bool kRemoveRacesWithGet = false;

  static void Put(Table& t, std::uint64_t key, std::uint64_t value) {
    std::uint8_t payload[kSshtPayloadBytes];
    torture_internal::EncodePayload(value, payload, kSshtPayloadBytes);
    t.Put(key, payload);
  }
  static bool Get(Table& t, std::uint64_t key, std::uint64_t* value,
                  TortureReport* report, bool* optimistic = nullptr) {
    std::uint8_t payload[kSshtPayloadBytes];
    if (!t.Get(key, payload, optimistic)) {
      return false;
    }
    *value = torture_internal::DecodePayload(payload, kSshtPayloadBytes, key, report);
    return true;
  }
  static bool Remove(Table& t, std::uint64_t key) { return t.Remove(key); }
};

template <typename Mem, typename Lock>
struct KvsTortureTraits {
  using Table = Kvs<Mem, Lock>;
  // In the default immediate-free Kvs configuration a Get may race a
  // concurrent Delete of the same key into a use-after-free (mirroring the
  // modeled Memcached structure; see the contract in kvs.h), so mixed-phase
  // removes are disabled for this traits type. Tables configured with
  // defer_free lift the restriction — use KvsDeferFreeTortureTraits below.
  static constexpr bool kRemoveRacesWithGet = true;

  static void Put(Table& t, std::uint64_t key, std::uint64_t value) {
    std::uint8_t payload[kKvsValueBytes];
    torture_internal::EncodePayload(value, payload, kKvsValueBytes);
    t.Set(key, payload);
  }
  static bool Get(Table& t, std::uint64_t key, std::uint64_t* value,
                  TortureReport* report, bool* optimistic = nullptr) {
    std::uint8_t payload[kKvsValueBytes];
    if (!t.Get(key, payload, optimistic)) {
      return false;
    }
    *value = torture_internal::DecodePayload(payload, kKvsValueBytes, key, report);
    return true;
  }
  static bool Remove(Table& t, std::uint64_t key) { return t.Delete(key); }
};

// For Kvs instances configured with Config::defer_free (including every
// optimistic_reads table, which implies it): Delete retires victims through
// the grace-period protocol instead of freeing them, so a Get may safely
// race a Delete on the same key and the torturers are allowed to prove it.
template <typename Mem, typename Lock>
struct KvsDeferFreeTortureTraits : KvsTortureTraits<Mem, Lock> {
  static constexpr bool kRemoveRacesWithGet = false;
};

// Single-writer-per-key torture + exact register check + final-state audit.
template <typename Runtime, typename Traits>
TortureReport TortureTableSingleWriter(Runtime& rt, typename Traits::Table& table,
                                       const TableTortureOptions& opts) {
  using Mem = typename Runtime::Mem;
  const int threads = opts.writers + opts.readers;
  // Removes race gets only when there are concurrent getters: with zero
  // readers even the kvs (Get/Delete hazard, see file comment) churns safely,
  // since a key's sole writer never overlaps its own operations.
  const bool removes = opts.remove_fraction > 0 &&
                       (!Traits::kRemoveRacesWithGet || opts.readers == 0);
  HistoryLog log(threads,
                 static_cast<std::size_t>(opts.rounds) * opts.keys);
  TortureReport report;
  std::vector<TortureReport> reports(threads);

  rt.Run(threads, [&](int tid) {
    Rng rng(opts.seed * 31 + static_cast<std::uint64_t>(tid));
    if (tid < opts.writers) {
      for (int round = 0; round < opts.rounds; ++round) {
        for (std::uint64_t key = static_cast<std::uint64_t>(tid);
             key < static_cast<std::uint64_t>(opts.keys);
             key += static_cast<std::uint64_t>(opts.writers)) {
          TableOp op;
          op.tid = tid;
          op.key = key;
          if (removes && rng.NextBool(opts.remove_fraction)) {
            op.kind = TableOp::Kind::kRemove;
            op.t_inv = Mem::Now();
            op.found = Traits::Remove(table, key);
            op.t_resp = Mem::Now();
          } else {
            op.kind = TableOp::Kind::kPut;
            // Unique, nonzero per (key, round).
            op.value = (static_cast<std::uint64_t>(round + 1) << 32) |
                       (key << 8) | 0x5a;
            op.t_inv = Mem::Now();
            Traits::Put(table, key, op.value);
            op.t_resp = Mem::Now();
          }
          log.Record(tid, op);
          Mem::Pause(rng.NextBelow(100));
        }
      }
    } else {
      const int gets = opts.rounds * std::max(1, opts.keys / std::max(1, opts.readers));
      for (int i = 0; i < gets; ++i) {
        TableOp op;
        op.kind = TableOp::Kind::kGet;
        op.tid = tid;
        op.key = rng.NextBelow(static_cast<std::uint64_t>(opts.keys));
        op.t_inv = Mem::Now();
        op.found = Traits::Get(table, op.key, &op.value, &reports[tid],
                               &op.optimistic);
        op.t_resp = Mem::Now();
        log.Record(tid, op);
        Mem::Pause(rng.NextBelow(60));
      }
    }
  });

  for (const TortureReport& r : reports) {
    report.Merge(r);
  }
  const std::vector<TableOp> history = log.Merged();
  report.ops += history.size();
  CheckSingleWriterRegister(history, opts.clock_slack, &report);

  // Quiescent audit: the table must now agree with the final write state.
  const auto expected = FinalWriteState(history);
  rt.Run(1, [&](int) {
    for (std::uint64_t key = 0; key < static_cast<std::uint64_t>(opts.keys); ++key) {
      std::uint64_t value = 0;
      const bool found = Traits::Get(table, key, &value, &report);
      const auto it = expected.find(key);
      if (it == expected.end()) {
        if (found) {
          report.Violation("key " + std::to_string(key) +
                           " present after final remove (value " +
                           std::to_string(value) + ")");
        }
      } else if (!found || value != it->second) {
        report.Violation("key " + std::to_string(key) + " final state wrong: got " +
                         (found ? std::to_string(value) : "absent") +
                         ", expected " + std::to_string(it->second));
      }
    }
  });
  if constexpr (torture_internal::HasSize<typename Traits::Table>::value) {
    if (table.Size() != expected.size()) {
      report.Violation("size invariant: Size()=" + std::to_string(table.Size()) +
                       ", expected " + std::to_string(expected.size()));
    }
  }
  return report;
}

// Multi-writer integrity torture + drain/occupancy audit.
template <typename Runtime, typename Traits>
TortureReport TortureTableMultiWriter(Runtime& rt, typename Traits::Table& table,
                                      const TableTortureOptions& opts) {
  using Mem = typename Runtime::Mem;
  const int threads = opts.writers + opts.readers;
  const bool removes = !Traits::kRemoveRacesWithGet;
  TortureReport report;
  std::vector<TortureReport> reports(threads);

  rt.Run(threads, [&](int tid) {
    Rng rng(opts.seed * 131 + static_cast<std::uint64_t>(tid));
    std::uint64_t seq = 0;
    const int iters = opts.rounds * opts.keys;
    for (int i = 0; i < iters; ++i) {
      const std::uint64_t key = rng.NextBelow(static_cast<std::uint64_t>(opts.keys));
      const double dice = rng.NextDouble();
      if (dice < 0.5) {
        const std::uint64_t value = (torture_internal::KeyTag(key) << 48) |
                                    (static_cast<std::uint64_t>(tid + 1) << 40) |
                                    ++seq;
        Traits::Put(table, key, value);
      } else if (removes && dice < 0.6) {
        Traits::Remove(table, key);
      } else {
        std::uint64_t value = 0;
        if (Traits::Get(table, key, &value, &reports[tid]) &&
            (value >> 48) != torture_internal::KeyTag(key)) {
          reports[tid].Violation("cross-key corruption: key " + std::to_string(key) +
                                 " returned value tagged for another key (" +
                                 std::to_string(value) + ")");
        }
      }
      ++reports[tid].ops;
      Mem::Pause(rng.NextBelow(40));
    }
  });
  for (const TortureReport& r : reports) {
    report.Merge(r);
  }

  // Drain: a single thread removes every key; the table must end empty.
  rt.Run(1, [&](int) {
    for (std::uint64_t key = 0; key < static_cast<std::uint64_t>(opts.keys); ++key) {
      Traits::Remove(table, key);
      std::uint64_t value = 0;
      if (Traits::Get(table, key, &value, &report)) {
        report.Violation("key " + std::to_string(key) +
                         " still present after remove");
      }
    }
  });
  if constexpr (torture_internal::HasSize<typename Traits::Table>::value) {
    if (table.Size() != 0) {
      report.Violation("occupancy invariant: Size()=" +
                       std::to_string(table.Size()) + " after draining all keys");
    }
  }
  return report;
}

}  // namespace ssync

#endif  // SRC_TORTURE_TABLE_TORTURE_H_
