// libssmp channel torturers: message integrity (checksummed words),
// per-sender FIFO ordering, and no-loss/no-duplication, under the paper's two
// communication patterns — one-to-one streams (Figure 9) and a client-server
// loop (Figure 10) — plus the round-trip (sequence-parity) channel API.
#ifndef SRC_TORTURE_MP_TORTURE_H_
#define SRC_TORTURE_MP_TORTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mp/ssmp.h"
#include "src/torture/torture.h"
#include "src/util/rng.h"

namespace ssync {

struct MpTortureOptions {
  int pairs = 2;       // one-to-one: sender i streams to receiver i + pairs
  int messages = 200;  // per sender
  int clients = 4;     // client-server: thread 0 serves 1..clients
  int requests = 100;  // per client
  std::uint64_t seed = 1;
  // Route the one-to-one streams over the hardware message-passing backend
  // where the platform has one (Tilera iMesh). The hardware queue carries no
  // per-sender channels, so only the one-to-one torturer honors this.
  bool use_hw = false;
};

namespace torture_internal {

inline std::uint64_t MpChecksum(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t s = a * 0x9e3779b97f4a7c15ULL + b;
  s = SplitMix64(s);
  return s ^ (c * 0xbf58476d1ce4e5b9ULL);
}

}  // namespace torture_internal

// One-to-one streams: pairs of (sender, receiver) threads; each message
// carries {seq, sender, payload, checksum}. The receiver verifies integrity,
// sender identity, and gapless in-order sequence numbers.
template <typename Runtime>
TortureReport TortureMpOneToOne(Runtime& rt, const MpTortureOptions& opts) {
  using Mem = typename Runtime::Mem;
  const int n = 2 * opts.pairs;
  SsmpComm<Mem> comm(n, opts.use_hw);
  std::vector<TortureReport> reports(n);
  rt.Run(n, [&](int tid) {
    if (tid < opts.pairs) {
      Rng rng(opts.seed + static_cast<std::uint64_t>(tid));
      for (int seq = 0; seq < opts.messages; ++seq) {
        MpMessage m;
        m.w[0] = static_cast<std::uint64_t>(seq);
        m.w[1] = static_cast<std::uint64_t>(tid);
        m.w[2] = rng.Next();
        m.w[3] = torture_internal::MpChecksum(m.w[0], m.w[1], m.w[2]);
        comm.Send(tid + opts.pairs, m);
        ++reports[tid].ops;
      }
    } else {
      const int from = tid - opts.pairs;
      std::uint64_t expected = 0;
      for (int i = 0; i < opts.messages; ++i) {
        MpMessage m;
        comm.Recv(from, &m);
        ++reports[tid].ops;
        if (m.w[3] != torture_internal::MpChecksum(m.w[0], m.w[1], m.w[2])) {
          reports[tid].Violation("message integrity: bad checksum from sender " +
                                 std::to_string(from) + " at seq " +
                                 std::to_string(m.w[0]));
        }
        if (m.w[1] != static_cast<std::uint64_t>(from)) {
          reports[tid].Violation("channel crosstalk: sender id " +
                                 std::to_string(m.w[1]) + " on channel from " +
                                 std::to_string(from));
        }
        if (m.w[0] != expected) {
          reports[tid].Violation(
              "ordering/loss: expected seq " + std::to_string(expected) +
              " from sender " + std::to_string(from) + ", got " +
              std::to_string(m.w[0]));
          expected = m.w[0];  // resync so one gap reports once
        }
        ++expected;
      }
    }
  });
  TortureReport total;
  for (const TortureReport& r : reports) {
    total.Merge(r);
  }
  return total;
}

// Round-trip channel API (SendRt/RecvRt, alternating sequence parity): pairs
// of threads ping-pong; the responder transforms the payload and prefetches
// its outgoing buffer, as the paper's client-server loop does.
template <typename Runtime>
TortureReport TortureMpRoundTrip(Runtime& rt, const MpTortureOptions& opts) {
  using Mem = typename Runtime::Mem;
  const int n = 2 * opts.pairs;
  SsmpComm<Mem> comm(n);
  std::vector<TortureReport> reports(n);
  rt.Run(n, [&](int tid) {
    if (tid < opts.pairs) {
      const int peer = tid + opts.pairs;
      Rng rng(opts.seed * 3 + static_cast<std::uint64_t>(tid));
      for (int seq = 0; seq < opts.messages; ++seq) {
        MpMessage m;
        m.w[0] = static_cast<std::uint64_t>(seq);
        m.w[1] = rng.Next();
        m.w[2] = 0;
        m.w[3] = torture_internal::MpChecksum(m.w[0], m.w[1], m.w[2]);
        comm.SendRt(peer, m);
        MpMessage reply;
        comm.RecvRt(peer, &reply);
        ++reports[tid].ops;
        if (reply.w[0] != m.w[0] || reply.w[1] != m.w[1] + 1) {
          reports[tid].Violation("round-trip mismatch at seq " +
                                 std::to_string(seq) + ": got {" +
                                 std::to_string(reply.w[0]) + ", " +
                                 std::to_string(reply.w[1]) + "}");
        }
      }
    } else {
      const int peer = tid - opts.pairs;
      for (int i = 0; i < opts.messages; ++i) {
        MpMessage m;
        comm.RecvRt(peer, &m);
        if (m.w[3] != torture_internal::MpChecksum(m.w[0], m.w[1], m.w[2])) {
          reports[tid].Violation("round-trip integrity: bad checksum at seq " +
                                 std::to_string(m.w[0]));
        }
        comm.PrefetchOutgoing(peer);
        m.w[1] += 1;  // visible transform the requester verifies
        comm.SendRt(peer, m);
        ++reports[tid].ops;
      }
    }
  });
  TortureReport total;
  for (const TortureReport& r : reports) {
    total.Merge(r);
  }
  return total;
}

// Client-server: thread 0 serves clients 1..clients via RecvFromAny. The
// server checks integrity and per-client gapless sequences (FIFO per sender
// even when interleaved across senders); each client checks its replies echo
// its own in-flight request.
template <typename Runtime>
TortureReport TortureMpClientServer(Runtime& rt, const MpTortureOptions& opts) {
  using Mem = typename Runtime::Mem;
  const int n = opts.clients + 1;
  SsmpComm<Mem> comm(n);
  std::vector<TortureReport> reports(n);
  std::vector<std::uint64_t> served(n, 0);
  rt.Run(n, [&](int tid) {
    if (tid == 0) {
      std::vector<std::uint64_t> expected(n, 0);
      const int total_requests = opts.clients * opts.requests;
      for (int i = 0; i < total_requests; ++i) {
        MpMessage m;
        const int from = comm.RecvFromAny(&m, 1, opts.clients);
        ++reports[0].ops;
        if (m.w[3] != torture_internal::MpChecksum(m.w[0], m.w[1], m.w[2])) {
          reports[0].Violation("server: bad checksum from client " +
                               std::to_string(from));
        }
        if (m.w[0] != static_cast<std::uint64_t>(from)) {
          reports[0].Violation("server: client id " + std::to_string(m.w[0]) +
                               " arrived on channel from " + std::to_string(from));
        }
        if (m.w[1] != expected[from]) {
          reports[0].Violation("server: client " + std::to_string(from) +
                               " seq " + std::to_string(m.w[1]) + ", expected " +
                               std::to_string(expected[from]));
          expected[from] = m.w[1];
        }
        ++expected[from];
        ++served[from];
        comm.PrefetchOutgoing(from);
        m.w[2] += 7;  // service transform
        m.w[3] = torture_internal::MpChecksum(m.w[0], m.w[1], m.w[2]);
        comm.Send(from, m);
      }
    } else {
      Rng rng(opts.seed * 7 + static_cast<std::uint64_t>(tid));
      for (std::uint64_t seq = 0; seq < static_cast<std::uint64_t>(opts.requests);
           ++seq) {
        MpMessage m;
        m.w[0] = static_cast<std::uint64_t>(tid);
        m.w[1] = seq;
        m.w[2] = rng.Next();
        m.w[3] = torture_internal::MpChecksum(m.w[0], m.w[1], m.w[2]);
        comm.Send(0, m);
        MpMessage reply;
        comm.Recv(0, &reply);
        ++reports[tid].ops;
        if (reply.w[0] != m.w[0] || reply.w[1] != m.w[1] ||
            reply.w[2] != m.w[2] + 7 ||
            reply.w[3] !=
                torture_internal::MpChecksum(reply.w[0], reply.w[1], reply.w[2])) {
          reports[tid].Violation("client " + std::to_string(tid) +
                                 ": reply does not match request seq " +
                                 std::to_string(seq));
        }
      }
    }
  });
  TortureReport total;
  for (const TortureReport& r : reports) {
    total.Merge(r);
  }
  for (int c = 1; c < n; ++c) {
    if (served[c] != static_cast<std::uint64_t>(opts.requests)) {
      total.Violation("server served " + std::to_string(served[c]) +
                      " requests for client " + std::to_string(c) + ", expected " +
                      std::to_string(opts.requests));
    }
  }
  return total;
}

}  // namespace ssync

#endif  // SRC_TORTURE_MP_TORTURE_H_
