// Torture-test infrastructure: invariant-violation reporting shared by the
// lock, hash-table, kvs, and message-passing torturers (see the sibling
// *_torture.h headers). Every torturer is a template over the Runtime concept
// (docs/ARCHITECTURE.md), so the same checks run on the simulated machines
// and on the host (`--backend=sim|native`).
//
// A torture phase returns a TortureReport: the amount of work performed plus
// every invariant violation observed, as human-readable messages. Phases
// never abort on a violation — they keep hammering and collect everything, so
// one run of a broken primitive produces the full failure picture.
#ifndef SRC_TORTURE_TORTURE_H_
#define SRC_TORTURE_TORTURE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ssync {

class TortureReport {
 public:
  // Messages beyond this are counted but not stored, so a completely broken
  // primitive cannot OOM the test run with millions of identical strings.
  static constexpr std::size_t kMaxRecorded = 32;

  void Violation(std::string message) {
    ++violation_count_;
    if (violations_.size() < kMaxRecorded) {
      violations_.push_back(std::move(message));
    }
  }

  void Merge(const TortureReport& other) {
    ops += other.ops;
    violation_count_ += other.violation_count_;
    for (const std::string& v : other.violations_) {
      if (violations_.size() >= kMaxRecorded) {
        break;
      }
      violations_.push_back(v);
    }
  }

  bool ok() const { return violation_count_ == 0; }
  std::uint64_t violation_count() const { return violation_count_; }
  const std::vector<std::string>& violations() const { return violations_; }

  // "ok (N ops)" or the recorded violations, one per line — what the gtest
  // assertions print on failure.
  std::string Summary() const;

  // Work performed by the phase (operations, acquisitions, messages, ...).
  std::uint64_t ops = 0;

 private:
  std::uint64_t violation_count_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace ssync

#endif  // SRC_TORTURE_TORTURE_H_
