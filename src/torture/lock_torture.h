// Generic lock torturer, driven by the SSYNC_LOCK_LIST X-macro: every lock
// kind that exists (including any added later) is hammered by the same
// phases, on either backend.
//
// Phases:
//   * TortureLockMutualExclusion — N threads hold the lock around a plain
//     (unsynchronized) counter plus a canary cache line whose words must
//     always encode the counter. Any exclusion failure shows up as an
//     overlapping-critical-section flag, a corrupted canary, or a lost
//     update. Deliberate fiber yields / pauses inside the critical section
//     widen the race window on both backends.
//   * TortureLockFairness — bounded-bypass check for the queue locks: between
//     a thread's arrival and its acquisition, at most B other acquisitions
//     may happen (B = threads-1 for the strict-FIFO locks, scaled by the
//     cohort handoff budget for the hierarchical ones, unbounded for
//     TAS/TTAS/MUTEX which promise nothing).
//   * TortureLockStorm — acquire/release storm with no re-arrival pause,
//     uneven per-thread hold times, and TryLock barging where the algorithm
//     provides it.
//   * TortureLockChurn — successive runs with shrinking/growing worker
//     counts reuse one lock instance, so per-thread queue slots (MCS/CLH
//     nodes, ticket state) must survive dense thread ids being re-assigned
//     to new threads.
//   * TortureLockTimed — duration-based soak combining the exclusion
//     invariant with per-thread progress (no starvation); the `torture`
//     ssyncbench experiment runs this so soaks are scriptable.
#ifndef SRC_TORTURE_LOCK_TORTURE_H_
#define SRC_TORTURE_LOCK_TORTURE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "src/locks/locks.h"
#include "src/torture/torture.h"
#include "src/util/cacheline.h"
#include "src/util/rng.h"

namespace ssync {

struct LockTortureOptions {
  int threads = 4;
  int iters = 200;  // per-thread acquisitions in the fixed-count phases
  std::uint64_t seed = 1;
  // Extra bypass allowance on top of the lock's theoretical bound. Keep 0 on
  // the simulator (deterministic, tight windows); on the native backend the
  // OS can preempt a thread between its arrival stamp and its actual queue
  // entry, so tests pass a generous slack there and the check catches gross
  // unfairness rather than single overtakes.
  std::uint64_t bypass_slack = 0;
  // Number of over-bound samples tolerated per fairness run before it counts
  // as a violation. A descheduled thread can legitimately see an unbounded
  // number of acquisitions slip between its arrival stamp and its queue
  // entry — no fixed acquisition-count slack covers a whole timeslice — but
  // that window is a few instructions wide, so such samples are rare; a
  // systematically unfair lock exceeds the bound on a large fraction of its
  // samples. Keep 0 (strict) on the simulator, a small count natively.
  std::uint64_t max_bypass_excursions = 0;
};

namespace torture_internal {

inline constexpr std::uint64_t kCanaryStride = 0x9e3779b97f4a7c15ULL;

// One cache line of lock-protected state. Invariant (holding the lock, at
// rest): canary[i] == (counter) * kCanaryStride * (i + 2) for all i. All
// fields are plain memory — only a correct lock keeps them consistent.
struct alignas(kCacheLineSize) ProtectedCell {
  std::uint64_t counter = 0;
  std::uint64_t canary[7] = {};

  void InitCanary() {
    for (int i = 0; i < 7; ++i) {
      canary[i] = counter * kCanaryStride * static_cast<std::uint64_t>(i + 2);
    }
  }
};
static_assert(sizeof(ProtectedCell) == kCacheLineSize);

// One critical section: verify the at-rest invariant, then advance it with
// interleaved plain writes. The Compute/Pause calls yield to other fibers on
// the simulator (and burn real cycles natively), so a lock that admits two
// holders interleaves two half-updated cells — which the canary check of one
// of them observes.
template <typename Mem>
void TortureCriticalSection(ProtectedCell& cell,
                            typename Mem::template Atomic<std::uint32_t>& in_cs,
                            TortureReport& report) {
  if (in_cs.FetchAdd(1) != 0) {
    report.Violation("mutual exclusion: overlapping critical sections");
  }
  const std::uint64_t c = cell.counter;
  Mem::Compute(20);
  for (int i = 0; i < 7; ++i) {
    if (cell.canary[i] != c * kCanaryStride * static_cast<std::uint64_t>(i + 2)) {
      report.Violation("canary corrupted: word " + std::to_string(i) +
                       " at counter " + std::to_string(c));
      break;
    }
  }
  cell.counter = c + 1;
  Mem::Compute(10);
  for (int i = 0; i < 7; ++i) {
    cell.canary[i] = (c + 1) * kCanaryStride * static_cast<std::uint64_t>(i + 2);
    if (i == 3) {
      Mem::Compute(5);  // a second window, mid-canary
    }
  }
  in_cs.FetchAdd(static_cast<std::uint32_t>(-1));
}

template <typename L, typename = void>
struct HasTryLock : std::false_type {};
template <typename L>
struct HasTryLock<L, std::void_t<decltype(std::declval<L&>().TryLock())>>
    : std::true_type {};

}  // namespace torture_internal

// Bypass bound for TortureLockFairness: the maximum number of acquisitions
// by other threads between a thread's arrival and its own acquisition that
// the algorithm permits. -1 for locks with no fairness guarantee.
inline std::int64_t LockBypassBound(LockKind kind, const LockTopology& topo) {
  const std::int64_t fifo = topo.max_threads - 1;
  switch (kind) {
    case LockKind::kTicket:
    case LockKind::kArray:
    case LockKind::kMcs:
    case LockKind::kClh:
      return fifo;
    case LockKind::kHclh:
    case LockKind::kHticket:
    case LockKind::kCohort:
      // With one cluster the local queue's FIFO order is the global order.
      // Across clusters, a waiter can sit out its own cluster's handoff
      // budget plus every other cluster's full budget turn.
      return topo.num_clusters() == 1
                 ? fifo
                 : static_cast<std::int64_t>(topo.max_threads) *
                       (kCohortMaxHandoffs + 2);
    case LockKind::kTas:
    case LockKind::kTtas:
    case LockKind::kMutex:
      return -1;
  }
  return -1;
}

template <typename Runtime>
TortureReport TortureLockMutualExclusion(Runtime& rt, LockKind kind,
                                         const LockTopology& topo,
                                         const LockTortureOptions& opts) {
  using Mem = typename Runtime::Mem;
  TortureReport total;
  WithLock<Mem>(kind, topo, TicketOptions{}, [&](auto& lock) {
    auto cell = std::make_unique<torture_internal::ProtectedCell>();
    cell->InitCanary();
    auto in_cs =
        std::make_unique<Padded<typename Mem::template Atomic<std::uint32_t>>>();
    rt.PlaceData(cell.get(), sizeof(*cell), 0);
    std::vector<TortureReport> reports(opts.threads);
    rt.Run(opts.threads, [&](int tid) {
      Rng rng(opts.seed * 0x9e3779b9u + static_cast<std::uint64_t>(tid));
      for (int i = 0; i < opts.iters; ++i) {
        lock.Lock();
        torture_internal::TortureCriticalSection<Mem>(*cell, in_cs->value,
                                                      reports[tid]);
        lock.Unlock();
        ++reports[tid].ops;
        // Randomized re-arrival delay mixes contended and uncontested
        // handoffs in one run.
        Mem::Pause(rng.NextBelow(64));
      }
    });
    for (const TortureReport& r : reports) {
      total.Merge(r);
    }
    const std::uint64_t expected =
        static_cast<std::uint64_t>(opts.threads) * static_cast<std::uint64_t>(opts.iters);
    if (cell->counter != expected) {
      total.Violation("lost update: counter " + std::to_string(cell->counter) +
                      " after " + std::to_string(expected) + " acquisitions");
    }
  });
  return total;
}

template <typename Runtime>
TortureReport TortureLockFairness(Runtime& rt, LockKind kind,
                                  const LockTopology& topo,
                                  const LockTortureOptions& opts) {
  using Mem = typename Runtime::Mem;
  const std::int64_t bound = LockBypassBound(kind, topo);
  TortureReport total;
  WithLock<Mem>(kind, topo, TicketOptions{}, [&](auto& lock) {
    auto acquisitions =
        std::make_unique<Padded<typename Mem::template Atomic<std::uint64_t>>>();
    std::vector<TortureReport> reports(opts.threads);
    std::vector<Padded<std::uint64_t>> excursions(opts.threads);
    std::vector<Padded<std::uint64_t>> worst(opts.threads);
    rt.Run(opts.threads, [&](int tid) {
      for (int i = 0; i < opts.iters; ++i) {
        const std::uint64_t arrival = acquisitions->value.Load();
        lock.Lock();
        const std::uint64_t mine = acquisitions->value.FetchAdd(1);
        if (bound >= 0 &&
            mine - arrival > static_cast<std::uint64_t>(bound) + opts.bypass_slack) {
          ++*excursions[tid];
          *worst[tid] = std::max(*worst[tid], mine - arrival);
        }
        Mem::Compute(30);
        lock.Unlock();
        ++reports[tid].ops;
        Mem::Pause(40);
      }
    });
    std::uint64_t over = 0;
    std::uint64_t worst_seen = 0;
    for (int tid = 0; tid < opts.threads; ++tid) {
      total.Merge(reports[tid]);
      over += *excursions[tid];
      worst_seen = std::max(worst_seen, *worst[tid]);
    }
    if (bound >= 0 && over > opts.max_bypass_excursions) {
      total.Violation(
          "bounded bypass exceeded in " + std::to_string(over) + " of " +
          std::to_string(total.ops) + " acquisitions (worst: " +
          std::to_string(worst_seen) + " passed a waiter; bound " +
          std::to_string(bound) + " + slack " + std::to_string(opts.bypass_slack) +
          ", tolerance " + std::to_string(opts.max_bypass_excursions) + ")");
    }
  });
  return total;
}

template <typename Runtime>
TortureReport TortureLockStorm(Runtime& rt, LockKind kind, const LockTopology& topo,
                               const LockTortureOptions& opts) {
  using Mem = typename Runtime::Mem;
  TortureReport total;
  WithLock<Mem>(kind, topo, TicketOptions{}, [&](auto& lock) {
    using L = std::remove_reference_t<decltype(lock)>;
    auto cell = std::make_unique<torture_internal::ProtectedCell>();
    cell->InitCanary();
    auto in_cs =
        std::make_unique<Padded<typename Mem::template Atomic<std::uint32_t>>>();
    std::vector<TortureReport> reports(opts.threads);
    std::vector<std::uint64_t> entries(opts.threads, 0);
    rt.Run(opts.threads, [&](int tid) {
      for (int i = 0; i < opts.iters; ++i) {
        // TryLock barging, where available: a successful barge still runs
        // the full invariant check.
        if constexpr (torture_internal::HasTryLock<L>::value) {
          if ((i + tid) % 5 == 0) {
            if (lock.TryLock()) {
              torture_internal::TortureCriticalSection<Mem>(*cell, in_cs->value,
                                                            reports[tid]);
              ++entries[tid];
              lock.Unlock();
            }
            ++reports[tid].ops;
            continue;
          }
        }
        lock.Lock();
        torture_internal::TortureCriticalSection<Mem>(*cell, in_cs->value,
                                                      reports[tid]);
        // Uneven hold times: some threads hog the lock.
        Mem::Compute(static_cast<std::uint64_t>(tid % 4) * 30);
        ++entries[tid];
        lock.Unlock();
        ++reports[tid].ops;
        // No re-arrival pause: immediate re-acquisition storms the lock word.
      }
    });
    std::uint64_t total_entries = 0;
    for (int tid = 0; tid < opts.threads; ++tid) {
      total.Merge(reports[tid]);
      total_entries += entries[tid];
    }
    if (cell->counter != total_entries) {
      total.Violation("lost update under storm: counter " +
                      std::to_string(cell->counter) + " after " +
                      std::to_string(total_entries) + " critical sections");
    }
  });
  return total;
}

template <typename Runtime>
TortureReport TortureLockChurn(Runtime& rt, LockKind kind, const LockTopology& topo,
                               const LockTortureOptions& opts) {
  using Mem = typename Runtime::Mem;
  TortureReport total;
  WithLock<Mem>(kind, topo, TicketOptions{}, [&](auto& lock) {
    auto cell = std::make_unique<torture_internal::ProtectedCell>();
    cell->InitCanary();
    auto in_cs =
        std::make_unique<Padded<typename Mem::template Atomic<std::uint32_t>>>();
    // Worker counts rise and fall across phases; the lock instance persists.
    const int phases[] = {opts.threads, 1, std::max(2, opts.threads / 2),
                          opts.threads};
    std::uint64_t expected = 0;
    for (const int phase_threads : phases) {
      std::vector<TortureReport> reports(phase_threads);
      rt.Run(phase_threads, [&](int tid) {
        for (int i = 0; i < opts.iters / 2; ++i) {
          lock.Lock();
          torture_internal::TortureCriticalSection<Mem>(*cell, in_cs->value,
                                                        reports[tid]);
          lock.Unlock();
          ++reports[tid].ops;
          Mem::Pause(8);
        }
      });
      for (const TortureReport& r : reports) {
        total.Merge(r);
      }
      expected += static_cast<std::uint64_t>(phase_threads) *
                  static_cast<std::uint64_t>(opts.iters / 2);
    }
    if (cell->counter != expected) {
      total.Violation("lost update across churn phases: counter " +
                      std::to_string(cell->counter) + " expected " +
                      std::to_string(expected));
    }
  });
  return total;
}

template <typename Runtime>
TortureReport TortureLockTimed(Runtime& rt, LockKind kind, const LockTopology& topo,
                               std::uint64_t duration,
                               const LockTortureOptions& opts) {
  using Mem = typename Runtime::Mem;
  TortureReport total;
  WithLock<Mem>(kind, topo, TicketOptions{}, [&](auto& lock) {
    auto cell = std::make_unique<torture_internal::ProtectedCell>();
    cell->InitCanary();
    auto in_cs =
        std::make_unique<Padded<typename Mem::template Atomic<std::uint32_t>>>();
    rt.PlaceData(cell.get(), sizeof(*cell), 0);
    std::vector<TortureReport> reports(opts.threads);
    std::vector<std::uint64_t> acq(opts.threads, 0);
    rt.RunForCycles(opts.threads, duration, [&](int tid) {
      Rng rng(opts.seed + static_cast<std::uint64_t>(tid));
      while (!Mem::ShouldStop()) {
        lock.Lock();
        torture_internal::TortureCriticalSection<Mem>(*cell, in_cs->value,
                                                      reports[tid]);
        lock.Unlock();
        ++acq[tid];
        ++reports[tid].ops;
        Mem::Pause(rng.NextBelow(64));
      }
    });
    std::uint64_t sum = 0;
    for (int tid = 0; tid < opts.threads; ++tid) {
      total.Merge(reports[tid]);
      sum += acq[tid];
    }
    if (cell->counter != sum) {
      total.Violation("lost update in timed soak: counter " +
                      std::to_string(cell->counter) + " after " +
                      std::to_string(sum) + " acquisitions");
    }
    // Starvation check: only the queue/hierarchical locks promise progress
    // to every waiter (TAS/TTAS/MUTEX may legitimately starve a thread
    // briefly), and only once the run is long enough that a fair schedule
    // would have served everyone many times over.
    if (LockBypassBound(kind, topo) >= 0 &&
        sum > static_cast<std::uint64_t>(opts.threads) * 256) {
      for (int tid = 0; tid < opts.threads; ++tid) {
        if (acq[tid] == 0) {
          total.Violation("starvation: thread " + std::to_string(tid) +
                          " acquired 0 of " + std::to_string(sum));
        }
      }
    }
  });
  return total;
}

}  // namespace ssync

#endif  // SRC_TORTURE_LOCK_TORTURE_H_
